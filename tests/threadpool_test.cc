// Tests for the deterministic thread pool: result ordering, exception
// propagation, nested submission, and the jobs=1 serial guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/threadpool.h"

namespace spa {
namespace {

TEST(ThreadPoolTest, HardwareJobsAtLeastOne)
{
    EXPECT_GE(ThreadPool::HardwareJobs(), 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.jobs(), ThreadPool::HardwareJobs());
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(8);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](int64_t i) { visits[static_cast<size_t>(i)]++; });
    for (int64_t i = 0; i < kN; ++i)
        EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(8);
    constexpr int64_t kN = 512;
    const auto out = pool.ParallelMap<int64_t>(kN, [](int64_t i) { return i * i; });
    ASSERT_EQ(out.size(), static_cast<size_t>(kN));
    for (int64_t i = 0; i < kN; ++i)
        EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(ThreadPoolTest, EmptyAndSingletonBatches)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.ParallelFor(0, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.ParallelFor(-3, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.ParallelFor(1, [&](int64_t i) { calls += static_cast<int>(i) + 1; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.ParallelFor(100,
                                  [](int64_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("item 37");
                                  }),
                 std::runtime_error);
    // The pool stays usable after a failed batch.
    const auto out = pool.ParallelMap<int>(10, [](int64_t i) {
        return static_cast<int>(i) + 1;
    });
    EXPECT_EQ(out.back(), 10);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins)
{
    ThreadPool pool(8);
    for (int trial = 0; trial < 20; ++trial) {
        try {
            pool.ParallelFor(64, [](int64_t i) {
                throw std::runtime_error("item " + std::to_string(i));
            });
            FAIL() << "expected a throw";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "item 0");
        }
    }
}

TEST(ThreadPoolTest, NestedSubmissionDoesNotDeadlock)
{
    // Every outer item issues an inner ParallelFor on the same pool
    // while all workers are already inside the outer batch. The caller
    // participates in its own batches, so this must complete.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.ParallelFor(16, [&](int64_t) {
        pool.ParallelFor(16, [&](int64_t j) { total += j; });
    });
    EXPECT_EQ(total.load(), 16 * (15 * 16 / 2));
}

TEST(ThreadPoolTest, SizeOneRunsInlineInIndexOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1);
    std::vector<int64_t> order;
    pool.ParallelFor(100, [&](int64_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 100u);
    for (int64_t i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ManySmallBatchesBackToBack)
{
    ThreadPool pool(8);
    int64_t sum = 0;
    for (int round = 0; round < 200; ++round) {
        const auto out =
            pool.ParallelMap<int64_t>(3, [round](int64_t i) { return round + i; });
        sum += out[0] + out[1] + out[2];
    }
    int64_t expected = 0;
    for (int round = 0; round < 200; ++round)
        expected += 3 * round + 3;
    EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace spa
