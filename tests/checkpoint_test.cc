// Crash-safe checkpoint/resume: EngineCheckpoint JSON round-trips
// exactly, and a run killed after a checkpoint resumes to a result
// bitwise-identical to an uninterrupted run, at jobs=1 and jobs=8.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "autoseg/autoseg.h"
#include "autoseg/checkpoint.h"
#include "nn/models.h"

namespace spa {
namespace autoseg {
namespace {

CoDesignOptions
FastOptions(int jobs)
{
    CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    options.jobs = jobs;
    // Small node budget: these tests exercise robustness plumbing, not
    // MIP solution quality, and the budget knob keeps them fast.
    options.mip_node_budget = 256;
    return options;
}

void
ExpectIdenticalResults(const CoDesignResult& a, const CoDesignResult& b,
                       alloc::DesignGoal goal)
{
    ASSERT_EQ(a.ok, b.ok);
    if (a.ok) {
        EXPECT_EQ(a.assignment.num_segments, b.assignment.num_segments);
        EXPECT_EQ(a.assignment.num_pus, b.assignment.num_pus);
        EXPECT_EQ(a.assignment.segment_of, b.assignment.segment_of);
        EXPECT_EQ(a.assignment.pu_of, b.assignment.pu_of);
        EXPECT_EQ(a.alloc.latency_seconds, b.alloc.latency_seconds);
        EXPECT_EQ(a.alloc.throughput_fps, b.alloc.throughput_fps);
        EXPECT_EQ(a.alloc.pe_utilization, b.alloc.pe_utilization);
        EXPECT_EQ(a.alloc.config.ToString(), b.alloc.config.ToString());
        EXPECT_EQ(a.metrics.min_ctc, b.metrics.min_ctc);
        EXPECT_EQ(a.metrics.sod, b.metrics.sod);
        EXPECT_EQ(a.GoalValue(goal), b.GoalValue(goal));
    }
    ASSERT_EQ(a.explored.size(), b.explored.size());
    for (size_t i = 0; i < a.explored.size(); ++i) {
        const CandidateRecord& ra = a.explored[i];
        const CandidateRecord& rb = b.explored[i];
        EXPECT_EQ(ra.num_segments, rb.num_segments) << "entry " << i;
        EXPECT_EQ(ra.num_pus, rb.num_pus) << "entry " << i;
        EXPECT_EQ(ra.feasible, rb.feasible) << "entry " << i;
        EXPECT_EQ(ra.latency_seconds, rb.latency_seconds) << "entry " << i;
        EXPECT_EQ(ra.throughput_fps, rb.throughput_fps) << "entry " << i;
        EXPECT_EQ(ra.min_ctc, rb.min_ctc) << "entry " << i;
        EXPECT_EQ(ra.sod, rb.sod) << "entry " << i;
        EXPECT_EQ(ra.tier, rb.tier) << "entry " << i;
        EXPECT_EQ(ra.status.code(), rb.status.code()) << "entry " << i;
    }
}

TEST(CheckpointTest, JsonRoundTripIsExact)
{
    EngineCheckpoint ck;
    ck.model = "alexnet";
    ck.platform = "nvdla-small";
    ck.goal = "latency";
    ck.pairs = {{2, 2}, {4, 2}, {4, 4}};

    EngineCheckpoint::Entry feasible;
    feasible.record.num_segments = 2;
    feasible.record.num_pus = 2;
    feasible.record.feasible = true;
    feasible.record.latency_seconds = 0.012345678901234567;
    feasible.record.throughput_fps = 81.5;
    feasible.record.min_ctc = 3.25;
    feasible.record.sod = 0.5;
    feasible.record.tier = seg::SegmenterTier::kMip;
    feasible.record.fallbacks = 1;
    seg::Assignment a;
    a.num_segments = 2;
    a.num_pus = 2;
    a.segment_of = {0, 0, 1, 1};
    a.pu_of = {0, 1, 0, 1};
    feasible.best = a;
    ck.completed.push_back(feasible);

    EngineCheckpoint::Entry failed;
    failed.record.num_segments = 4;
    failed.record.num_pus = 2;
    failed.record.failed_candidates = 3;
    failed.record.status = FaultInjected("injected fault at cost.compute");
    ck.completed.push_back(failed);

    StatusOr<EngineCheckpoint> back = CheckpointFromJson(CheckpointToJson(ck));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->model, ck.model);
    EXPECT_EQ(back->platform, ck.platform);
    EXPECT_EQ(back->goal, ck.goal);
    EXPECT_EQ(back->pairs, ck.pairs);
    ASSERT_EQ(back->completed.size(), 2u);

    const EngineCheckpoint::Entry& f = back->completed[0];
    EXPECT_TRUE(f.record.feasible);
    EXPECT_EQ(f.record.latency_seconds, feasible.record.latency_seconds);
    EXPECT_EQ(f.record.throughput_fps, feasible.record.throughput_fps);
    EXPECT_EQ(f.record.tier, seg::SegmenterTier::kMip);
    EXPECT_EQ(f.record.fallbacks, 1);
    ASSERT_TRUE(f.best.has_value());
    EXPECT_EQ(f.best->segment_of, a.segment_of);
    EXPECT_EQ(f.best->pu_of, a.pu_of);

    const EngineCheckpoint::Entry& g = back->completed[1];
    EXPECT_FALSE(g.best.has_value());
    EXPECT_EQ(g.record.failed_candidates, 3);
    EXPECT_EQ(g.record.status.code(), StatusCode::kFaultInjected);
    EXPECT_EQ(g.record.status.message(), failed.record.status.message());
}

TEST(CheckpointTest, MalformedDocumentsAreRejected)
{
    json::Value not_a_checkpoint;
    not_a_checkpoint["format"] = "something-else";
    EXPECT_EQ(CheckpointFromJson(not_a_checkpoint).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(CheckpointFromJson(json::Value(3)).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, KillAndResumeMatchesUninterrupted)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    const hw::Platform budget = hw::NvdlaSmallBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    cost::CostModel cost_model;

    for (int jobs : {1, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const std::string path = testing::TempDir() + "spa_ckpt_j" +
                                 std::to_string(jobs) + ".json";

        // The reference: one uninterrupted, non-incremental run.
        Engine plain(cost_model, FastOptions(jobs));
        const CoDesignResult full = plain.Run(w, budget, goal);
        ASSERT_TRUE(full.ok);

        // "Kill" after three pairs: max_pairs plays the role of the
        // crash, the checkpoint is what a killed run leaves on disk.
        CoDesignOptions partial_options = FastOptions(jobs);
        partial_options.checkpoint_path = path;
        partial_options.checkpoint_every = 2;
        partial_options.max_pairs = 3;
        Engine partial(cost_model, partial_options);
        const CoDesignResult truncated = partial.Run(w, budget, goal);
        EXPECT_TRUE(truncated.truncated);
        EXPECT_EQ(truncated.explored.size(), 3u);

        // Resume from the checkpoint and run to completion.
        CoDesignOptions resume_options = FastOptions(jobs);
        resume_options.resume_path = path;
        Engine resumed_engine(cost_model, resume_options);
        const CoDesignResult resumed = resumed_engine.Run(w, budget, goal);
        EXPECT_TRUE(resumed.status.ok()) << resumed.status.ToString();
        EXPECT_FALSE(resumed.truncated);
        ExpectIdenticalResults(full, resumed, goal);
        std::remove(path.c_str());
    }
}

TEST(CheckpointTest, ResumeRejectsForeignCheckpoint)
{
    const std::string path = testing::TempDir() + "spa_ckpt_foreign.json";
    cost::CostModel cost_model;

    CoDesignOptions write_options = FastOptions(1);
    write_options.checkpoint_path = path;
    write_options.max_pairs = 2;
    Engine writer(cost_model, write_options);
    nn::Workload alexnet = nn::ExtractWorkload(nn::BuildAlexNet());
    writer.Run(alexnet, hw::NvdlaSmallBudget(), alloc::DesignGoal::kLatency);

    // Same checkpoint, different model: the fingerprint must refuse it.
    CoDesignOptions resume_options = FastOptions(1);
    resume_options.resume_path = path;
    Engine resumer(cost_model, resume_options);
    nn::Workload squeezenet = nn::ExtractWorkload(nn::BuildSqueezeNet());
    const CoDesignResult result =
        resumer.Run(squeezenet, hw::NvdlaSmallBudget(), alloc::DesignGoal::kLatency);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
    std::remove(path.c_str());
}

TEST(CheckpointTest, ResumeSurfacesFileErrors)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel cost_model;

    CoDesignOptions missing = FastOptions(1);
    missing.resume_path = "/nonexistent-spa-ckpt.json";
    const CoDesignResult a =
        Engine(cost_model, missing).Run(w, hw::NvdlaSmallBudget(),
                                        alloc::DesignGoal::kLatency);
    EXPECT_FALSE(a.ok);
    EXPECT_EQ(a.status.code(), StatusCode::kIoError);

    const std::string path = testing::TempDir() + "spa_ckpt_torn.json";
    {
        std::ofstream out(path);
        out << "{\"format\": \"spa.autoseg.checkpoint.v1\", \"pairs\": [[";
    }
    CoDesignOptions torn = FastOptions(1);
    torn.resume_path = path;
    const CoDesignResult b =
        Engine(cost_model, torn).Run(w, hw::NvdlaSmallBudget(),
                                     alloc::DesignGoal::kLatency);
    EXPECT_FALSE(b.ok);
    EXPECT_EQ(b.status.code(), StatusCode::kInvalidArgument);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace autoseg
}  // namespace spa
