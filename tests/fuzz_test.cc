// Randomized structural tests: generated DAGs through workload
// extraction and segmentation, plus exhaustive-enumeration optimality
// checks for the solvers on tiny instances.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/workload.h"
#include "seg/segmenter.h"

namespace spa {
namespace {

/** Random branchy conv DAG with adds/concats/pools sprinkled in. */
nn::Graph
RandomGraph(Rng& rng, int num_convs)
{
    nn::Graph g("fuzz");
    std::vector<nn::LayerId> frontier;
    // Channel counts kept small and uniform so add/concat shapes match.
    nn::LayerId in = g.AddInput("input", {4, 16, 16});
    frontier.push_back(g.AddConv("c0", in, 8, 3, 1, 1));
    for (int i = 1; i < num_convs; ++i) {
        const nn::LayerId src =
            frontier[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(frontier.size()) - 1))];
        const std::string name = "c" + std::to_string(i);
        const int kind = static_cast<int>(rng.UniformInt(0, 9));
        nn::LayerId next;
        if (kind < 6) {
            next = g.AddConv(name, src, 8, 3, 1, 1);
        } else if (kind < 8 && frontier.size() >= 2) {
            // Residual add between two same-shape frontier tensors.
            nn::LayerId other =
                frontier[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(frontier.size()) - 1))];
            if (g.layer(other).out_shape() == g.layer(src).out_shape() &&
                other != src) {
                nn::LayerId sum = g.AddAdd("add" + std::to_string(i), src, other);
                next = g.AddConv(name, sum, 8, 3, 1, 1);
            } else {
                next = g.AddConv(name, src, 8, 3, 1, 1);
            }
        } else {
            next = g.AddConv(name, src, 8, 1, 1, 0);
        }
        frontier.push_back(next);
        if (frontier.size() > 3)
            frontier.erase(frontier.begin());
    }
    return g;
}

TEST(WorkloadFuzzTest, ExtractionInvariantsHoldOnRandomDags)
{
    Rng rng(2024);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 4 + static_cast<int>(rng.UniformInt(0, 12));
        nn::Graph g = RandomGraph(rng, n);
        nn::Workload w = nn::ExtractWorkload(g);
        ASSERT_EQ(w.NumLayers(), n) << "trial " << trial;
        EXPECT_EQ(w.TotalOps(), g.TotalMacs());
        for (const auto& e : w.edges) {
            EXPECT_GT(e.bytes, 0);
            EXPECT_LT(e.dst, w.NumLayers());
            if (e.src >= 0)
                EXPECT_LT(e.src, e.dst);  // workload order is topological
        }
        for (const auto& l : w.layers) {
            EXPECT_GT(l.ops, 0) << l.name;
            EXPECT_GT(l.input_bytes, 0) << l.name;
            EXPECT_GT(l.output_bytes, 0) << l.name;
        }
        // HasPath is antisymmetric on a DAG.
        for (int a = 0; a < w.NumLayers(); ++a) {
            for (int b = a + 1; b < std::min(w.NumLayers(), a + 4); ++b) {
                if (w.HasPath(a, b)) {
                    EXPECT_FALSE(w.HasPath(b, a));
                }
            }
        }
    }
}

TEST(SegmenterFuzzTest, ValidAssignmentsOnRandomDags)
{
    Rng rng(77);
    seg::HeuristicSegmenter segmenter;
    for (int trial = 0; trial < 15; ++trial) {
        nn::Graph g = RandomGraph(rng, 8 + static_cast<int>(rng.UniformInt(0, 8)));
        nn::Workload w = nn::ExtractWorkload(g);
        const int pus = 2 + static_cast<int>(rng.UniformInt(0, 1));
        const int segments =
            1 + static_cast<int>(rng.UniformInt(0, w.NumLayers() / pus - 1));
        seg::Assignment a;
        if (segmenter.Solve(w, segments, pus, a)) {
            EXPECT_EQ(seg::CheckConstraints(w, a), "") << "trial " << trial;
        }
    }
}

/** Exhaustive optimum of the segmentation objective on tiny instances. */
double
BruteForceBest(const nn::Workload& w, int segments, int pus)
{
    const int n = w.NumLayers();
    std::vector<int> seg_of(static_cast<size_t>(n), 0);
    std::vector<int> pu_of(static_cast<size_t>(n), 0);
    double best = 1e30;
    // Odometer over (segment, pu) per layer.
    const int radix = segments * pus;
    std::vector<int> digits(static_cast<size_t>(n), 0);
    while (true) {
        for (int l = 0; l < n; ++l) {
            seg_of[static_cast<size_t>(l)] = digits[static_cast<size_t>(l)] / pus;
            pu_of[static_cast<size_t>(l)] = digits[static_cast<size_t>(l)] % pus;
        }
        seg::Assignment a;
        a.num_segments = segments;
        a.num_pus = pus;
        a.segment_of = seg_of;
        a.pu_of = pu_of;
        if (seg::CheckConstraints(w, a).empty()) {
            best = std::min(best, seg::ComputeMetrics(w, a).Objective());
        }
        // Increment odometer.
        int pos = 0;
        while (pos < n) {
            if (++digits[static_cast<size_t>(pos)] < radix)
                break;
            digits[static_cast<size_t>(pos)] = 0;
            ++pos;
        }
        if (pos == n)
            break;
    }
    return best;
}

TEST(SegmenterOptimalityTest, SolversNearExhaustiveOptimumOnTinyChains)
{
    // 5-layer chain, S=2, N=2: 10^5 odometer states, exhaustible.
    nn::Graph g("tiny");
    nn::LayerId x = g.AddInput("input", {4, 12, 12});
    for (int i = 0; i < 5; ++i)
        x = g.AddConv("c" + std::to_string(i), x, 4 + 2 * (i % 2), 3, 1, 1);
    nn::Workload w = nn::ExtractWorkload(g);

    const double optimum = BruteForceBest(w, 2, 2);
    ASSERT_LT(optimum, 1e29);

    seg::Assignment a;
    ASSERT_TRUE(seg::SolveSegmentation(w, 2, 2, a));
    const double found = seg::ComputeMetrics(w, a).Objective();
    // The production path must land within 10% of the true optimum of
    // the paper objective (it may trade a sliver for pow2 balance).
    EXPECT_LE(found, optimum * 1.10 + 1e-9);
}

TEST(SegmenterOptimalityTest, MipMatchesExhaustiveOnBranchyGraph)
{
    nn::Graph g("branchy");
    nn::LayerId in = g.AddInput("input", {4, 12, 12});
    nn::LayerId a1 = g.AddConv("a1", in, 4, 3, 1, 1);
    nn::LayerId b1 = g.AddConv("b1", a1, 4, 3, 1, 1);
    nn::LayerId b2 = g.AddConv("b2", a1, 4, 3, 1, 1);
    nn::LayerId j = g.AddAdd("j", b1, b2);
    g.AddConv("c1", j, 4, 3, 1, 1);
    nn::Workload w = nn::ExtractWorkload(g);

    const double optimum = BruteForceBest(w, 2, 2);
    seg::MipSegmenter mip;
    seg::Assignment a;
    ASSERT_TRUE(mip.Solve(w, 2, 2, a));
    EXPECT_LE(seg::ComputeMetrics(w, a).Objective(), optimum * 1.15 + 1e-9);
}

TEST(DegenerateGraphFuzzTest, EmptyWorkloadIsInvalidArgument)
{
    nn::Workload w;
    w.name = "empty";
    EXPECT_EQ(seg::SolveSegmentationRobust(w, 2, 2).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(seg::SolveSegmentationRobust(w, 1, 1).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(DegenerateGraphFuzzTest, SingleLayerHandledCleanly)
{
    nn::Graph g("one");
    nn::LayerId in = g.AddInput("input", {4, 12, 12});
    g.AddConv("c0", in, 4, 3, 1, 1);
    nn::Workload w = nn::ExtractWorkload(g);

    auto fits = seg::SolveSegmentationRobust(w, 1, 1);
    ASSERT_TRUE(fits.ok()) << fits.status().ToString();
    EXPECT_FALSE(fits->candidates.empty());

    // One layer cannot fill two segment slots: infeasible, not fatal.
    EXPECT_EQ(seg::SolveSegmentationRobust(w, 2, 1).status().code(),
              StatusCode::kInfeasible);
}

TEST(DegenerateGraphFuzzTest, ArbitraryShapesNeverCrashTheRobustChain)
{
    // Random DAGs against shape requests sweeping from nonsense to
    // oversubscribed: every call must come back with either valid
    // candidates or a clean structured Status.
    Rng rng(4242);
    seg::SegmenterOptions options;
    options.mip_node_budget = 64;  // shape coverage, not solver quality
    for (int trial = 0; trial < 40; ++trial) {
        nn::Graph g = RandomGraph(rng, 3 + static_cast<int>(rng.UniformInt(0, 6)));
        nn::Workload w = nn::ExtractWorkload(g);
        const int segments = static_cast<int>(rng.UniformInt(0, 4));
        const int pus = static_cast<int>(rng.UniformInt(0, 4));
        auto outcome = seg::SolveSegmentationRobust(w, segments, pus, options);
        if (outcome.ok()) {
            ASSERT_FALSE(outcome->candidates.empty()) << "trial " << trial;
            for (const seg::Assignment& a : outcome->candidates)
                EXPECT_EQ(seg::CheckConstraints(w, a), "") << "trial " << trial;
        } else {
            const StatusCode code = outcome.status().code();
            EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                        code == StatusCode::kInfeasible)
                << "trial " << trial << ": " << outcome.status().ToString();
        }
    }
}

}  // namespace
}  // namespace spa
