// Tests for the analytical cost model, including exactness against the
// register-level systolic emulation (cycles and buffer traffic).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost.h"
#include "nn/models.h"
#include "pu/actbuf.h"
#include "pu/driver.h"

namespace spa {
namespace cost {
namespace {

struct CostCase
{
    const char* label;
    int64_t cin, h, w, cout, k, stride, pad, groups;
    int64_t rows, cols;
};

nn::WorkloadLayer
LayerOf(const CostCase& cc)
{
    nn::WorkloadLayer l;
    l.name = cc.label;
    l.cin = cc.cin;
    l.hin = cc.h;
    l.win = cc.w;
    l.cout = cc.cout;
    l.hout = (cc.h + 2 * cc.pad - cc.k) / cc.stride + 1;
    l.wout = (cc.w + 2 * cc.pad - cc.k) / cc.stride + 1;
    l.kernel = cc.k;
    l.stride = cc.stride;
    l.groups = cc.groups;
    l.is_depthwise = (cc.cin / cc.groups == 1 && cc.groups > 1);
    l.ops = l.cout * l.hout * l.wout * (cc.cin / cc.groups) * cc.k * cc.k;
    l.weight_bytes = l.cout * (cc.cin / cc.groups) * cc.k * cc.k + l.cout;
    l.input_bytes = cc.cin * cc.h * cc.w;
    l.output_bytes = l.cout * l.hout * l.wout;
    return l;
}

class CostExactnessTest : public testing::TestWithParam<CostCase>
{
};

TEST_P(CostExactnessTest, CyclesMatchCycleLevelDriver)
{
    const CostCase& cc = GetParam();
    const nn::WorkloadLayer layer = LayerOf(cc);
    hw::PuConfig pu;
    pu.rows = cc.rows;
    pu.cols = cc.cols;
    CostModel model;
    Rng rng(5);
    pu::Tensor3 input(cc.cin, cc.h, cc.w);
    input.FillRandom(rng);
    pu::Weights4 weights(cc.cout, cc.cin / cc.groups, cc.k);
    weights.FillRandom(rng);
    pu::PuDriver driver(cc.rows, cc.cols);
    for (hw::Dataflow df :
         {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary}) {
        auto run = driver.RunConv(input, weights, cc.stride, cc.pad, cc.groups, df);
        EXPECT_EQ(model.ComputeCycles(layer, pu, df), run.cycles)
            << cc.label << " " << hw::DataflowName(df);
        // Traffic counters agree too (weights exclude the bias term the
        // workload's weight_bytes carries).
        auto traffic = model.OnChipTraffic(layer, pu, df);
        EXPECT_EQ(traffic.act_reads, run.act_reads)
            << cc.label << " " << hw::DataflowName(df);
        EXPECT_EQ(traffic.weight_reads, run.weight_reads)
            << cc.label << " " << hw::DataflowName(df);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Convs, CostExactnessTest,
    testing::Values(CostCase{"pointwise", 8, 6, 6, 16, 1, 1, 0, 1, 4, 4},
                    CostCase{"k3_same", 4, 8, 8, 8, 3, 1, 1, 1, 4, 4},
                    CostCase{"k3_stride2", 6, 9, 9, 10, 3, 2, 1, 1, 4, 4},
                    CostCase{"k5", 3, 10, 10, 6, 5, 1, 2, 1, 8, 4},
                    CostCase{"grouped", 8, 6, 6, 8, 3, 1, 1, 2, 4, 4},
                    CostCase{"depthwise", 6, 8, 8, 6, 3, 1, 1, 6, 4, 4},
                    CostCase{"underfilled_rows", 3, 12, 12, 16, 3, 1, 1, 1, 16, 4},
                    CostCase{"wide", 8, 5, 5, 32, 3, 1, 1, 1, 2, 16}),
    [](const testing::TestParamInfo<CostCase>& info) { return info.param.label; });

TEST(CostModelTest, UtilizationWithinUnitInterval)
{
    CostModel model;
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    hw::PuConfig pu{16, 16, 32768, 32768};
    for (const auto& l : w.layers) {
        for (hw::Dataflow df :
             {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary}) {
            const double u = model.Utilization(l, pu, df);
            EXPECT_GT(u, 0.0) << l.name;
            EXPECT_LE(u, 1.0) << l.name;
        }
    }
}

TEST(CostModelTest, ShallowInputStarvesWsRows)
{
    // cin = 3 on a 16-row WS array: utilization capped near 3/16.
    CostModel model;
    nn::WorkloadLayer l =
        LayerOf(CostCase{"first", 3, 32, 32, 64, 3, 1, 1, 1, 16, 16});
    hw::PuConfig tall{16, 16, 32768, 32768};
    hw::PuConfig flat{4, 64, 32768, 32768};
    const double u_tall = model.Utilization(l, tall, hw::Dataflow::kWeightStationary);
    const double u_flat = model.Utilization(l, flat, hw::Dataflow::kWeightStationary);
    EXPECT_LT(u_tall, 0.25);
    EXPECT_GT(u_flat, 2.0 * u_tall);  // shape-matching pays (the SPA story)
}

TEST(CostModelTest, DepthwisePrefersOsByCycles)
{
    CostModel model;
    nn::WorkloadLayer dw =
        LayerOf(CostCase{"dw", 32, 28, 28, 32, 3, 1, 1, 32, 8, 8});
    hw::PuConfig pu{8, 8, 32768, 32768};
    EXPECT_EQ(model.BestDataflow(dw, pu), hw::Dataflow::kOutputStationary);
}

TEST(CostModelTest, MinActBufferMatchesEqOneLayout)
{
    nn::WorkloadLayer l = LayerOf(CostCase{"x", 10, 20, 14, 8, 3, 2, 1, 1, 4, 4});
    pu::ActivationBuffer buf(4, 10, 14, 3, 2);
    EXPECT_EQ(CostModel::MinActBufferBytes(l, 4, 1), buf.CapacityBytes());
}

TEST(CostModelTest, MinWeightBufferIsKSquaredTimesPes)
{
    nn::WorkloadLayer l = LayerOf(CostCase{"x", 8, 8, 8, 8, 3, 1, 1, 1, 4, 4});
    EXPECT_EQ(CostModel::MinWeightBufferBytes(l, 64, 1), 9 * 64);
}

TEST(CostModelTest, DramRefetchWhenBuffersTooSmall)
{
    CostModel model;
    nn::WorkloadLayer l =
        LayerOf(CostCase{"big", 64, 28, 28, 128, 3, 1, 1, 1, 8, 8});
    hw::PuConfig tiny{8, 8, 512, 512};
    hw::PuConfig roomy{8, 8, 1 << 20, 1 << 20};
    EXPECT_GT(model.DramBytesLayerwise(l, tiny, hw::Dataflow::kWeightStationary, 1),
              model.DramBytesLayerwise(l, roomy, hw::Dataflow::kWeightStationary, 1));
    // With room, DRAM equals the layer's simple access constant.
    EXPECT_EQ(model.DramBytesLayerwise(l, roomy, hw::Dataflow::kWeightStationary, 1),
              l.AccessBytes());
}

TEST(CostModelTest, EnergyComponentsPositiveAndScale)
{
    CostModel model;
    nn::WorkloadLayer l = LayerOf(CostCase{"x", 16, 14, 14, 32, 3, 1, 1, 1, 8, 8});
    hw::PuConfig pu{8, 8, 16384, 16384};
    auto traffic = model.OnChipTraffic(l, pu, hw::Dataflow::kWeightStationary);
    EXPECT_GT(model.BufferEnergyPj(traffic, pu), 0.0);
    EXPECT_GT(model.MacEnergyPj(l), 0.0);
    EXPECT_GT(model.ArrayControlEnergyPj(l, pu, hw::Dataflow::kWeightStationary),
              0.0);
    // Small-weight layers restream cheaper (FIFO path).
    EXPECT_LT(model.BufferEnergyPj(traffic, pu, /*layer_weight_bytes=*/1024),
              model.BufferEnergyPj(traffic, pu, /*layer_weight_bytes=*/1 << 22) +
                  1e-9);
}

TEST(CostModelTest, FullEvaluateBundlesFields)
{
    CostModel model;
    nn::WorkloadLayer l = LayerOf(CostCase{"x", 8, 10, 10, 8, 3, 1, 1, 1, 4, 4});
    hw::PuConfig pu{4, 4, 8192, 8192};
    auto eval = model.Evaluate(l, pu, hw::Dataflow::kOutputStationary, 1);
    EXPECT_EQ(eval.compute_cycles,
              model.ComputeCycles(l, pu, hw::Dataflow::kOutputStationary));
    EXPECT_GT(eval.utilization, 0.0);
    EXPECT_GT(eval.dram_bytes_layerwise, 0);
}

}  // namespace
}  // namespace cost
}  // namespace spa
