// Tests for the Alg. 1 resource allocator.

#include <gtest/gtest.h>

#include "alloc/allocator.h"

#include "common/util.h"
#include "hw/platform.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace spa {
namespace alloc {
namespace {

struct AllocCase
{
    nn::Workload w;
    seg::Assignment a;
};

AllocCase
MakeCase(const char* model, int segments, int pus)
{
    AllocCase s{nn::ExtractWorkload(nn::BuildModel(model)), {}};
    seg::HeuristicSegmenter segmenter;
    EXPECT_TRUE(segmenter.Solve(s.w, segments, pus, s.a));
    return s;
}

TEST(AllocatorTest, FitsEyerissBudget)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::EyerissBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    EXPECT_LE(result.config.TotalPes(), hw::EyerissBudget().pes);
    EXPECT_LE(result.config.TotalBufferBytes(), hw::EyerissBudget().onchip_bytes);
    EXPECT_GT(result.latency_seconds, 0.0);
    EXPECT_GT(result.throughput_fps, 0.0);
}

TEST(AllocatorTest, PowerOfTwoArrays)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    for (const auto& pu : result.config.pus) {
        EXPECT_TRUE(IsPow2(pu.rows)) << pu.rows;
        EXPECT_TRUE(IsPow2(pu.cols)) << pu.cols;
    }
}

TEST(AllocatorTest, PeQuotaFollowsDistribution)
{
    AllocCase s = MakeCase("mobilenet_v1", 6, 2);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // The PU with the larger v_hat share gets at least as many PEs.
    const int big = result.v_hat[0] >= result.v_hat[1] ? 0 : 1;
    EXPECT_GE(result.config.pus[static_cast<size_t>(big)].NumPes(),
              result.config.pus[static_cast<size_t>(1 - big)].NumPes());
}

TEST(AllocatorTest, ScaleUpConsumesBudget)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // Step 3 should push PE usage well past the bandwidth-matched seed.
    EXPECT_GT(result.config.TotalPes(), hw::NvdlaLargeBudget().pes / 4);
}

TEST(AllocatorTest, ThroughputGoalBatches)
{
    AllocCase s = MakeCase("squeezenet", 4, 2);
    Allocator allocator{cost::CostModel()};
    // EdgeTPU: huge PE budget, tiny bandwidth -> small pipeline, room
    // for batch replication.
    auto latency = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                      DesignGoal::kLatency);
    auto throughput = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                         DesignGoal::kThroughput);
    ASSERT_TRUE(latency.ok);
    ASSERT_TRUE(throughput.ok);
    EXPECT_EQ(latency.config.batch, 1);
    EXPECT_GE(throughput.config.batch, 1);
    EXPECT_GE(throughput.throughput_fps, latency.throughput_fps * 0.99);
}

TEST(AllocatorTest, DataflowChosenPerPuPerSegment)
{
    AllocCase s = MakeCase("mobilenet_v1", 6, 2);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // MobileNet mixes depthwise and pointwise: at least one PU-segment
    // slot should pick OS (depthwise) and at least one WS or OS mix.
    int os_count = 0, total = 0;
    for (const auto& seg_eval : result.segments) {
        for (auto df : seg_eval.dataflow) {
            os_count += df == hw::Dataflow::kOutputStationary;
            ++total;
        }
    }
    EXPECT_GT(os_count, 0);
    EXPECT_GT(total, os_count);  // not everything OS
}

TEST(AllocatorTest, LatencyAccountsForMemoryBound)
{
    AllocCase s = MakeCase("squeezenet", 4, 2);
    Allocator allocator{cost::CostModel()};
    // EdgeTPU's 0.5 GB/s: segments must be memory bound.
    auto result = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    for (const auto& seg_eval : result.segments)
        EXPECT_GE(seg_eval.latency_seconds, seg_eval.memory_seconds);
}

TEST(AllocatorTest, EvaluateMatchesAllocateConfig)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto allocated = allocator.Allocate(s.w, s.a, hw::EyerissBudget(),
                                        DesignGoal::kLatency);
    ASSERT_TRUE(allocated.ok);
    auto evaluated = allocator.Evaluate(s.w, s.a, allocated.config);
    EXPECT_NEAR(evaluated.latency_seconds, allocated.latency_seconds, 1e-12);
}

TEST(AllocatorTest, UtilizationInUnitRange)
{
    AllocCase s = MakeCase("resnet18", 3, 4);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.pe_utilization, 0.0);
    EXPECT_LE(result.pe_utilization, 1.0);
}

}  // namespace
}  // namespace alloc
}  // namespace spa
