// Tests for the Alg. 1 resource allocator.

#include <gtest/gtest.h>

#include "alloc/allocator.h"

#include "common/rng.h"
#include "common/util.h"
#include "hw/platform.h"
#include "nn/models.h"
#include "seg/assignment_index.h"
#include "seg/segmenter.h"

namespace spa {
namespace alloc {
namespace {

struct AllocCase
{
    nn::Workload w;
    seg::Assignment a;
};

AllocCase
MakeCase(const char* model, int segments, int pus)
{
    AllocCase s{nn::ExtractWorkload(nn::BuildModel(model)), {}};
    seg::HeuristicSegmenter segmenter;
    EXPECT_TRUE(segmenter.Solve(s.w, segments, pus, s.a));
    return s;
}

TEST(AllocatorTest, FitsEyerissBudget)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::EyerissBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    EXPECT_LE(result.config.TotalPes(), hw::EyerissBudget().pes);
    EXPECT_LE(result.config.TotalBufferBytes(), hw::EyerissBudget().onchip_bytes);
    EXPECT_GT(result.latency_seconds, 0.0);
    EXPECT_GT(result.throughput_fps, 0.0);
}

TEST(AllocatorTest, PowerOfTwoArrays)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    for (const auto& pu : result.config.pus) {
        EXPECT_TRUE(IsPow2(pu.rows)) << pu.rows;
        EXPECT_TRUE(IsPow2(pu.cols)) << pu.cols;
    }
}

TEST(AllocatorTest, PeQuotaFollowsDistribution)
{
    AllocCase s = MakeCase("mobilenet_v1", 6, 2);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // The PU with the larger v_hat share gets at least as many PEs.
    const int big = result.v_hat[0] >= result.v_hat[1] ? 0 : 1;
    EXPECT_GE(result.config.pus[static_cast<size_t>(big)].NumPes(),
              result.config.pus[static_cast<size_t>(1 - big)].NumPes());
}

TEST(AllocatorTest, ScaleUpConsumesBudget)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // Step 3 should push PE usage well past the bandwidth-matched seed.
    EXPECT_GT(result.config.TotalPes(), hw::NvdlaLargeBudget().pes / 4);
}

TEST(AllocatorTest, ThroughputGoalBatches)
{
    AllocCase s = MakeCase("squeezenet", 4, 2);
    Allocator allocator{cost::CostModel()};
    // EdgeTPU: huge PE budget, tiny bandwidth -> small pipeline, room
    // for batch replication.
    auto latency = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                      DesignGoal::kLatency);
    auto throughput = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                         DesignGoal::kThroughput);
    ASSERT_TRUE(latency.ok);
    ASSERT_TRUE(throughput.ok);
    EXPECT_EQ(latency.config.batch, 1);
    EXPECT_GE(throughput.config.batch, 1);
    EXPECT_GE(throughput.throughput_fps, latency.throughput_fps * 0.99);
}

TEST(AllocatorTest, DataflowChosenPerPuPerSegment)
{
    AllocCase s = MakeCase("mobilenet_v1", 6, 2);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    // MobileNet mixes depthwise and pointwise: at least one PU-segment
    // slot should pick OS (depthwise) and at least one WS or OS mix.
    int os_count = 0, total = 0;
    for (const auto& seg_eval : result.segments) {
        for (auto df : seg_eval.dataflow) {
            os_count += df == hw::Dataflow::kOutputStationary;
            ++total;
        }
    }
    EXPECT_GT(os_count, 0);
    EXPECT_GT(total, os_count);  // not everything OS
}

TEST(AllocatorTest, LatencyAccountsForMemoryBound)
{
    AllocCase s = MakeCase("squeezenet", 4, 2);
    Allocator allocator{cost::CostModel()};
    // EdgeTPU's 0.5 GB/s: segments must be memory bound.
    auto result = allocator.Allocate(s.w, s.a, hw::EdgeTpuBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    for (const auto& seg_eval : result.segments)
        EXPECT_GE(seg_eval.latency_seconds, seg_eval.memory_seconds);
}

TEST(AllocatorTest, EvaluateMatchesAllocateConfig)
{
    AllocCase s = MakeCase("squeezenet", 4, 3);
    Allocator allocator{cost::CostModel()};
    auto allocated = allocator.Allocate(s.w, s.a, hw::EyerissBudget(),
                                        DesignGoal::kLatency);
    ASSERT_TRUE(allocated.ok);
    auto evaluated = allocator.Evaluate(s.w, s.a, allocated.config);
    EXPECT_NEAR(evaluated.latency_seconds, allocated.latency_seconds, 1e-12);
}

TEST(AllocatorTest, UtilizationInUnitRange)
{
    AllocCase s = MakeCase("resnet18", 3, 4);
    Allocator allocator{cost::CostModel()};
    auto result = allocator.Allocate(s.w, s.a, hw::NvdlaLargeBudget(),
                                     DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.pe_utilization, 0.0);
    EXPECT_LE(result.pe_utilization, 1.0);
}

void
ExpectBitwiseEqualResults(const AllocationResult& got,
                          const AllocationResult& want)
{
    ASSERT_EQ(got.ok, want.ok);
    EXPECT_EQ(got.latency_seconds, want.latency_seconds);
    EXPECT_EQ(got.throughput_fps, want.throughput_fps);
    EXPECT_EQ(got.pe_utilization, want.pe_utilization);
    EXPECT_EQ(got.v_hat, want.v_hat);
    EXPECT_EQ(got.config.ToString(), want.config.ToString());
    EXPECT_EQ(got.config.batch, want.config.batch);
    ASSERT_EQ(got.segments.size(), want.segments.size());
    for (size_t s = 0; s < got.segments.size(); ++s) {
        const SegmentEval& g = got.segments[s];
        const SegmentEval& e = want.segments[s];
        EXPECT_EQ(g.pu_cycles, e.pu_cycles) << "segment " << s;
        EXPECT_EQ(g.max_pu_cycles, e.max_pu_cycles) << "segment " << s;
        EXPECT_EQ(g.access_bytes, e.access_bytes) << "segment " << s;
        EXPECT_EQ(g.compute_seconds, e.compute_seconds) << "segment " << s;
        EXPECT_EQ(g.memory_seconds, e.memory_seconds) << "segment " << s;
        EXPECT_EQ(g.latency_seconds, e.latency_seconds) << "segment " << s;
        EXPECT_EQ(g.bandwidth_usage, e.bandwidth_usage) << "segment " << s;
        EXPECT_EQ(g.dataflow, e.dataflow) << "segment " << s;
    }
}

/**
 * Property: the AssignmentIndex-backed evaluation path must reproduce
 * the retained naive-scan oracle (EvaluateReference) bitwise over
 * randomized workloads, assignments and configurations — every double
 * equal by ==, every integer and dataflow choice identical.
 */
TEST(AllocatorPropertyTest, IndexedEvaluateMatchesReferenceBitwise)
{
    Rng rng(20260806);
    Allocator allocator{cost::CostModel()};
    int checked = 0;
    for (const char* model : {"alexnet", "squeezenet", "mobilenet_v1"}) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        for (int trial = 0; trial < 12; ++trial) {
            const int num_pus = static_cast<int>(rng.UniformInt(1, 4));
            const int lps = static_cast<int>(rng.UniformInt(2, 6));
            seg::Assignment a = seg::EvenSegmentation(w, lps, num_pus);
            if (!seg::CheckConstraints(w, a).empty())
                continue;
            // Random constraint-preserving PU reassignments.
            for (int k = 0; k < 8; ++k) {
                seg::Assignment b = a;
                b.pu_of[static_cast<size_t>(
                    rng.UniformInt(0, w.NumLayers() - 1))] =
                    static_cast<int>(rng.UniformInt(0, num_pus - 1));
                if (seg::CheckConstraints(w, b).empty())
                    a = b;
            }
            hw::SpaConfig cfg;
            cfg.freq_ghz = 0.2 * static_cast<double>(rng.UniformInt(1, 5));
            cfg.bandwidth_gbps = static_cast<double>(rng.UniformInt(5, 25));
            cfg.pus.resize(static_cast<size_t>(num_pus));
            for (auto& pu : cfg.pus) {
                pu.rows = int64_t{1} << rng.UniformInt(2, 5);
                pu.cols = int64_t{1} << rng.UniformInt(2, 5);
                pu.act_buffer_bytes = int64_t{1} << rng.UniformInt(14, 19);
                pu.weight_buffer_bytes = int64_t{1} << rng.UniformInt(14, 19);
            }
            ExpectBitwiseEqualResults(allocator.Evaluate(w, a, cfg),
                                      allocator.EvaluateReference(w, a, cfg));
            ++checked;
        }
    }
    EXPECT_GE(checked, 15);  // the property actually exercised
}

/** The index-backed metric bundle equals the naive-scan one exactly. */
TEST(AllocatorPropertyTest, IndexedMetricsMatchNaiveScan)
{
    Rng rng(7);
    for (const char* model : {"alexnet", "squeezenet"}) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        for (int trial = 0; trial < 6; ++trial) {
            const int num_pus = static_cast<int>(rng.UniformInt(1, 4));
            seg::Assignment a = seg::EvenSegmentation(
                w, static_cast<int>(rng.UniformInt(2, 6)), num_pus);
            if (!seg::CheckConstraints(w, a).empty())
                continue;
            const seg::AssignmentIndex index(w, a);
            const seg::SegmentMetrics got = seg::ComputeMetrics(w, index);
            const seg::SegmentMetrics want = seg::ComputeMetrics(w, a);
            EXPECT_EQ(got.seg_ops, want.seg_ops);
            EXPECT_EQ(got.seg_access, want.seg_access);
            EXPECT_EQ(got.seg_ctc, want.seg_ctc);
            EXPECT_EQ(got.min_ctc, want.min_ctc);
            EXPECT_EQ(got.sod, want.sod);
            EXPECT_EQ(got.v, want.v);
            EXPECT_EQ(got.op, want.op);
        }
    }
}

/**
 * Delta re-evaluation contract: the result Allocate() returns must be
 * exactly what a from-scratch naive evaluation of its final
 * configuration produces — the per-(segment, PU) cycle-sum cache and
 * the removal of the trailing re-evaluation change nothing.
 */
TEST(AllocatorPropertyTest, AllocateResultMatchesReferenceReEvaluation)
{
    for (const char* model : {"alexnet", "squeezenet"}) {
        for (DesignGoal goal : {DesignGoal::kLatency, DesignGoal::kThroughput}) {
            AllocCase s = MakeCase(model, 3, 2);
            Allocator allocator{cost::CostModel()};
            auto result = allocator.Allocate(s.w, s.a, hw::NvdlaSmallBudget(),
                                             goal);
            ASSERT_TRUE(result.ok);
            ASSERT_NE(result.metrics, nullptr);
            auto ref = allocator.EvaluateReference(s.w, s.a, result.config);
            EXPECT_EQ(result.latency_seconds, ref.latency_seconds);
            EXPECT_EQ(result.throughput_fps, ref.throughput_fps);
            EXPECT_EQ(result.pe_utilization, ref.pe_utilization);
            ASSERT_EQ(result.segments.size(), ref.segments.size());
            for (size_t i = 0; i < ref.segments.size(); ++i) {
                EXPECT_EQ(result.segments[i].latency_seconds,
                          ref.segments[i].latency_seconds);
                EXPECT_EQ(result.segments[i].dataflow, ref.segments[i].dataflow);
            }
        }
    }
}

}  // namespace
}  // namespace alloc
}  // namespace spa
