// Fault-sweep regression: with each compiled fault site armed one at a
// time, a full Engine::Run must either finish with a degraded-but-valid
// result (fallbacks / skipped candidates / failed pairs counted) or
// return a clean non-OK Status — it must never crash. With the harness
// compiled in but disabled, results are identical to an unarmed run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autoseg/autoseg.h"
#include "common/fault.h"
#include "nn/models.h"

#ifdef SPA_FAULT_INJECTION

namespace spa {
namespace autoseg {
namespace {

CoDesignOptions
FastOptions(int jobs)
{
    CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    options.jobs = jobs;
    // Small node budget: these tests exercise robustness plumbing, not
    // MIP solution quality, and the budget knob keeps them fast.
    options.mip_node_budget = 256;
    return options;
}

CoDesignResult
RunAlexNet(int jobs)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions(jobs));
    return engine.Run(w, hw::NvdlaSmallBudget(), alloc::DesignGoal::kLatency);
}

void
ExpectIdentical(const CoDesignResult& a, const CoDesignResult& b)
{
    ASSERT_EQ(a.ok, b.ok);
    if (a.ok) {
        EXPECT_EQ(a.assignment.segment_of, b.assignment.segment_of);
        EXPECT_EQ(a.assignment.pu_of, b.assignment.pu_of);
        EXPECT_EQ(a.alloc.latency_seconds, b.alloc.latency_seconds);
        EXPECT_EQ(a.alloc.throughput_fps, b.alloc.throughput_fps);
        EXPECT_EQ(a.alloc.config.ToString(), b.alloc.config.ToString());
    }
    EXPECT_EQ(a.status.code(), b.status.code());
    EXPECT_EQ(a.status.message(), b.status.message());
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.pairs_failed, b.pairs_failed);
    EXPECT_EQ(a.fallbacks, b.fallbacks);
    EXPECT_EQ(a.failed_candidates, b.failed_candidates);
    ASSERT_EQ(a.explored.size(), b.explored.size());
    for (size_t i = 0; i < a.explored.size(); ++i) {
        const CandidateRecord& ra = a.explored[i];
        const CandidateRecord& rb = b.explored[i];
        EXPECT_EQ(ra.num_segments, rb.num_segments) << "entry " << i;
        EXPECT_EQ(ra.num_pus, rb.num_pus) << "entry " << i;
        EXPECT_EQ(ra.feasible, rb.feasible) << "entry " << i;
        EXPECT_EQ(ra.latency_seconds, rb.latency_seconds) << "entry " << i;
        EXPECT_EQ(ra.throughput_fps, rb.throughput_fps) << "entry " << i;
        EXPECT_EQ(ra.tier, rb.tier) << "entry " << i;
        EXPECT_EQ(ra.fallbacks, rb.fallbacks) << "entry " << i;
        EXPECT_EQ(ra.failed_candidates, rb.failed_candidates) << "entry " << i;
        EXPECT_EQ(ra.status.code(), rb.status.code()) << "entry " << i;
    }
}

class FaultSweepTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        fault::DisarmAll();
        fault::SetEnabled(false);
    }
};

TEST_F(FaultSweepTest, EverySiteDegradesGracefully)
{
    for (const std::string& site : fault::KnownSites()) {
        SCOPED_TRACE("armed site: " + site);
        fault::DisarmAll();
        fault::Arm(site, /*seed=*/1, /*period=*/1);
        fault::SetEnabled(true);
        // Must not crash or hang; everything else is degradation policy.
        const CoDesignResult result = RunAlexNet(/*jobs=*/1);
        if (fault::Hits(site) > 0) {
            // The fault actually fired somewhere in this run, so the
            // damage has to be visible: a non-OK status, counted
            // fallbacks / skipped candidates / failed pairs, or an
            // unusable result.
            EXPECT_TRUE(!result.status.ok() || result.fallbacks > 0 ||
                        result.failed_candidates > 0 ||
                        result.pairs_failed > 0 || !result.ok)
                << "fault fired " << fault::Hits(site)
                << " times but left no trace";
        }
    }
}

TEST_F(FaultSweepTest, ArmedRunReplaysExactly)
{
    // Same seed, same arming, jobs=1: the fault pattern — and therefore
    // the whole degraded result — replays bitwise.
    auto degraded_run = []() {
        fault::DisarmAll();
        fault::Arm("cost.compute", /*seed=*/3, /*period=*/7);
        fault::SetEnabled(true);
        return RunAlexNet(/*jobs=*/1);
    };
    const CoDesignResult first = degraded_run();
    const CoDesignResult second = degraded_run();
    ExpectIdentical(first, second);
}

TEST_F(FaultSweepTest, CompiledInButDisabledChangesNothing)
{
    fault::SetEnabled(false);
    const CoDesignResult off = RunAlexNet(/*jobs=*/1);

    // Enabled master switch with no armed site must also be inert.
    fault::SetEnabled(true);
    const CoDesignResult unarmed = RunAlexNet(/*jobs=*/1);
    fault::SetEnabled(false);

    ASSERT_TRUE(off.ok);
    EXPECT_TRUE(off.status.ok());
    ExpectIdentical(off, unarmed);
}

}  // namespace
}  // namespace autoseg
}  // namespace spa

#endif  // SPA_FAULT_INJECTION
