// Robustness primitives: Status/StatusOr semantics, deterministic
// deadline budgets, the fault-injection harness's replay guarantee,
// atomic JSON artifact writes, and the segmentation fallback chain.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/status.h"
#include "json/json.h"
#include "nn/models.h"
#include "nn/workload.h"
#include "seg/segmenter.h"

namespace spa {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, TerseConstructorsCarryCodeAndMessage)
{
    const Status s = DeadlineExceeded("budget spent");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(s.message(), "budget spent");
    EXPECT_EQ(s.ToString(), "DEADLINE_EXCEEDED: budget spent");
    EXPECT_EQ(IterLimit("x").code(), StatusCode::kIterLimit);
    EXPECT_EQ(Numerical("x").code(), StatusCode::kNumerical);
    EXPECT_EQ(FaultInjected("x").code(), StatusCode::kFaultInjected);
    EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, CodeNamesAreStable)
{
    EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
    EXPECT_STREQ(StatusCodeName(StatusCode::kIterLimit), "ITER_LIMIT");
    EXPECT_STREQ(StatusCodeName(StatusCode::kFaultInjected), "FAULT_INJECTED");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus)
{
    StatusOr<int> good = 7;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 7);

    StatusOr<int> bad = Infeasible("no partition");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInfeasible);

    // Default construction (container pre-sizing) is an error slot.
    StatusOr<int> empty;
    EXPECT_FALSE(empty.ok());
    EXPECT_EQ(empty.status().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPropagates)
{
    auto inner = [](bool fail) {
        return fail ? Unbounded("below") : Status::Ok();
    };
    auto outer = [&](bool fail) -> Status {
        SPA_RETURN_IF_ERROR(inner(fail));
        return Status::Ok();
    };
    EXPECT_TRUE(outer(false).ok());
    EXPECT_EQ(outer(true).code(), StatusCode::kUnbounded);
}

// -------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultIsUnlimited)
{
    Deadline d;
    EXPECT_TRUE(d.unlimited());
    EXPECT_FALSE(d.Exhausted());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(d.Charge());
    EXPECT_EQ(d.TicksLeft(), -1);
}

TEST(DeadlineTest, TickBudgetIsDeterministic)
{
    Deadline d = Deadline::AfterTicks(3);
    EXPECT_FALSE(d.unlimited());
    EXPECT_FALSE(d.Charge());
    EXPECT_FALSE(d.Charge());
    EXPECT_FALSE(d.Charge());
    EXPECT_TRUE(d.Charge());  // budget spent
    EXPECT_TRUE(d.Exhausted());
    EXPECT_EQ(d.TicksLeft(), 0);
}

TEST(DeadlineTest, CopiesShareTheBudget)
{
    Deadline a = Deadline::AfterTicks(2);
    Deadline b = a;
    EXPECT_FALSE(a.Charge());
    EXPECT_FALSE(b.Charge());
    EXPECT_TRUE(a.Charge());
    EXPECT_TRUE(b.Exhausted());
}

TEST(DeadlineTest, ExpiredWallClockExhausts)
{
    Deadline d = Deadline::AfterSeconds(-1.0);
    EXPECT_TRUE(d.Exhausted());
}

// ------------------------------------------------------- Fault injection

#ifdef SPA_FAULT_INJECTION

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        fault::DisarmAll();
        fault::SetEnabled(false);
    }
};

TEST_F(FaultInjectionTest, DisabledSitesNeverFire)
{
    fault::SetEnabled(false);
    for (int i = 0; i < 100; ++i)
        SPA_FAULT_POINT("test.robust.site");
    EXPECT_EQ(fault::Hits("test.robust.site"), 0);
}

TEST_F(FaultInjectionTest, ArmedPeriodOneFiresEveryVisit)
{
    fault::SetEnabled(true);
    fault::Arm("test.robust.every", 42, 1);
    EXPECT_THROW(SPA_FAULT_POINT("test.robust.every"), fault::InjectedFault);
    EXPECT_EQ(fault::Hits("test.robust.every"), 1);
    EXPECT_EQ(fault::Visits("test.robust.every"), 1);
}

TEST_F(FaultInjectionTest, FirePatternReplaysExactly)
{
    fault::SetEnabled(true);
    auto run = [](uint64_t seed) {
        fault::DisarmAll();
        fault::Arm("test.robust.replay", seed, 5);
        std::vector<int> fired;
        for (int i = 0; i < 200; ++i) {
            try {
                SPA_FAULT_POINT("test.robust.replay");
            } catch (const fault::InjectedFault&) {
                fired.push_back(i);
            }
        }
        return fired;
    };
    const std::vector<int> first = run(7);
    const std::vector<int> second = run(7);
    EXPECT_EQ(first, second);     // same seed: bitwise replay
    EXPECT_FALSE(first.empty());  // period 5 over 200 visits must fire
    EXPECT_LT(first.size(), 200u);
    EXPECT_NE(run(8), first);     // different seed: different pattern
}

TEST_F(FaultInjectionTest, KnownSitesListsTheCompiledPoints)
{
    const std::vector<std::string> sites = fault::KnownSites();
    EXPECT_GE(sites.size(), 10u);
    auto has = [&](const std::string& s) {
        return std::find(sites.begin(), sites.end(), s) != sites.end();
    };
    EXPECT_TRUE(has("mip.simplex.pivot"));
    EXPECT_TRUE(has("seg.dp.cuts"));
    EXPECT_TRUE(has("cost.compute"));
    EXPECT_TRUE(has("pool.task"));
    EXPECT_TRUE(has("autoseg.candidate"));
}

#endif  // SPA_FAULT_INJECTION

// ------------------------------------------------------- Atomic artifacts

TEST(AtomicSaveTest, WritesFileAndLeavesNoTemp)
{
    const std::string path = testing::TempDir() + "spa_atomic_save.json";
    json::Value doc;
    doc["answer"] = 42;
    ASSERT_TRUE(json::SaveFileOr(path, doc).ok());

    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "temp file must be renamed away";

    StatusOr<json::Value> back = json::LoadFileOr(path);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->At("answer").AsInt(), 42);
    std::remove(path.c_str());
}

TEST(AtomicSaveTest, UnwritableDirectoryReportsIoError)
{
    json::Value doc;
    doc["x"] = 1;
    const Status s =
        json::SaveFileOr("/nonexistent-dir-spa/out.json", doc);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(AtomicSaveTest, MissingFileIsIoErrorMalformedIsInvalidArgument)
{
    EXPECT_EQ(json::LoadFileOr("/nonexistent-spa.json").status().code(),
              StatusCode::kIoError);

    const std::string path = testing::TempDir() + "spa_malformed.json";
    {
        std::ofstream out(path);
        out << "{\"a\": [1, 2,,]}";
    }
    StatusOr<json::Value> r = json::LoadFileOr(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("byte offset"), std::string::npos)
        << r.status().message();
    std::remove(path.c_str());
}

// --------------------------------------------- Robust segmentation chain

TEST(RobustSegmentationTest, RejectsImpossibleShapesCleanly)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    EXPECT_EQ(seg::SolveSegmentationRobust(w, 0, 2).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(seg::SolveSegmentationRobust(w, 2, 0).status().code(),
              StatusCode::kInvalidArgument);
    // More segment-slots than layers: infeasible, not fatal.
    EXPECT_EQ(
        seg::SolveSegmentationRobust(w, w.NumLayers(), 2).status().code(),
        StatusCode::kInfeasible);
}

TEST(RobustSegmentationTest, HealthyPathMatchesLegacyCandidates)
{
    // (2, 2) lands in the exhaustive tier on AlexNet; (4, 2) is big
    // enough to skip it yet small enough for the MIP tier.
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    for (const auto& [S, N] : {std::pair{2, 2}, std::pair{4, 2}}) {
        const auto legacy = seg::SolveSegmentationCandidates(w, S, N);
        auto robust = seg::SolveSegmentationRobust(w, S, N);
        ASSERT_TRUE(robust.ok());
        ASSERT_EQ(robust->candidates.size(), legacy.size());
        for (size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(robust->candidates[i].segment_of, legacy[i].segment_of);
            EXPECT_EQ(robust->candidates[i].pu_of, legacy[i].pu_of);
        }
        EXPECT_EQ(robust->fallbacks, 0);
    }
}

#ifdef SPA_FAULT_INJECTION

TEST(RobustSegmentationTest, MipFaultFallsBackToDp)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    fault::SetEnabled(true);
    fault::Arm("seg.mip.solve", 3, 1);
    auto outcome = seg::SolveSegmentationRobust(w, 4, 2);
    fault::DisarmAll();
    fault::SetEnabled(false);

    // AlexNet at (4, 2) skips the exhaustive tier but fits the MIP
    // tier (L*(S+N) = 48 binaries), so the armed
    // fault must force a counted downgrade -- and the DP tier still
    // delivers candidates.
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome->candidates.empty());
    EXPECT_GE(outcome->fallbacks, 1);
    EXPECT_EQ(outcome->tier, seg::SegmenterTier::kDp);
}

#endif  // SPA_FAULT_INJECTION

TEST(RobustSegmentationTest, ExhaustedDeadlineSkipsMipTier)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    seg::SegmenterOptions options;
    options.deadline = Deadline::AfterTicks(0);
    auto outcome = seg::SolveSegmentationRobust(w, 4, 2, options);
    // DP (which holds no budget) still provides candidates; the missed
    // MIP attempt is a recorded fallback.
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome->candidates.empty());
    EXPECT_GE(outcome->fallbacks, 1);
}

}  // namespace
}  // namespace spa
