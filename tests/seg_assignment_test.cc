// Tests for the segmentation encoding, constraints and metrics.

#include <gtest/gtest.h>

#include "nn/models.h"
#include "seg/assignment.h"

namespace spa {
namespace seg {
namespace {

nn::Workload
ChainWorkload(int num_layers)
{
    nn::Graph g("chain");
    nn::LayerId x = g.AddInput("input", {4, 16, 16});
    for (int i = 0; i < num_layers; ++i)
        x = g.AddConv("c" + std::to_string(i), x, 4, 3, 1, 1);
    return nn::ExtractWorkload(g);
}

TEST(AssignmentTest, SingleSegmentSinglePuValid)
{
    nn::Workload w = ChainWorkload(4);
    Assignment a = SingleSegmentSinglePu(w);
    EXPECT_EQ(CheckConstraints(w, a), "");
}

TEST(AssignmentTest, EvenSegmentationValid)
{
    nn::Workload w = ChainWorkload(8);
    Assignment a = EvenSegmentation(w, 4, 2);
    EXPECT_EQ(a.num_segments, 2);
    EXPECT_EQ(CheckConstraints(w, a), "");
}

TEST(AssignmentTest, BackwardsEdgeRejected)
{
    nn::Workload w = ChainWorkload(2);
    Assignment a;
    a.num_segments = 2;
    a.num_pus = 1;
    a.segment_of = {1, 0};  // consumer before producer
    a.pu_of = {0, 0};
    EXPECT_NE(CheckConstraints(w, a), "");
}

TEST(AssignmentTest, IdlePuRejected)
{
    nn::Workload w = ChainWorkload(4);
    Assignment a;
    a.num_segments = 1;
    a.num_pus = 3;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 0, 1, 1};  // PU 2 idles
    EXPECT_NE(CheckConstraints(w, a), "");
}

TEST(AssignmentTest, CyclicPuPipelineRejected)
{
    nn::Workload w = ChainWorkload(4);
    Assignment a;
    a.num_segments = 1;
    a.num_pus = 2;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 1, 0, 1};  // 0 -> 1 -> 0 cycle
    EXPECT_NE(CheckConstraints(w, a), "");
    EXPECT_NE(CheckConstraints(w, a).find("cyclic"), std::string::npos);
}

TEST(AssignmentTest, AlternatingLayersOnSamePuAllowed)
{
    // Multiple layers per PU (Fig. 8: L6 and L7 alternate on a PU):
    // consecutive layers on PU 0, then the rest on PU 1.
    nn::Workload w = ChainWorkload(4);
    Assignment a;
    a.num_segments = 1;
    a.num_pus = 2;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 0, 1, 1};
    EXPECT_EQ(CheckConstraints(w, a), "");
}

TEST(MetricsTest, PipelineRemovesIntermediateTraffic)
{
    nn::Workload w = ChainWorkload(4);
    Assignment no_pipe = SingleSegmentSinglePu(w);
    // Layerwise access (sum over layers of in+w+out) vs segment access.
    int64_t layerwise = 0;
    for (const auto& l : w.layers)
        layerwise += l.AccessBytes();
    const int64_t pipelined = SegmentAccessBytes(w, no_pipe, 0);
    EXPECT_LT(pipelined, layerwise);
    // Pipelined = weights + external input + final output.
    int64_t expect = 0;
    for (const auto& l : w.layers)
        expect += l.weight_bytes;
    expect += w.layers[0].input_bytes;
    expect += w.layers.back().output_bytes;
    EXPECT_EQ(pipelined, expect);
}

TEST(MetricsTest, CrossSegmentEdgeCountedOnBothSides)
{
    nn::Workload w = ChainWorkload(2);
    Assignment a;
    a.num_segments = 2;
    a.num_pus = 1;
    a.segment_of = {0, 1};
    a.pu_of = {0, 0};
    const int64_t mid = w.layers[0].output_bytes;
    // Segment 0: input + weights + write mid. Segment 1: read mid +
    // weights + write out.
    EXPECT_EQ(SegmentAccessBytes(w, a, 0),
              w.layers[0].input_bytes + w.layers[0].weight_bytes + mid);
    EXPECT_EQ(SegmentAccessBytes(w, a, 1),
              mid + w.layers[1].weight_bytes + w.layers[1].output_bytes);
}

TEST(MetricsTest, OpsPartitionTotal)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    Assignment a = EvenSegmentation(w, 6, 2);
    SegmentMetrics m = ComputeMetrics(w, a);
    int64_t total = 0;
    for (int s = 0; s < a.num_segments; ++s)
        total += m.seg_ops[static_cast<size_t>(s)];
    EXPECT_EQ(total, w.TotalOps());
}

TEST(MetricsTest, DistributionsSumToOne)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    Assignment a = EvenSegmentation(w, 6, 3);
    SegmentMetrics m = ComputeMetrics(w, a);
    for (const auto& vs : m.v) {
        double sum = 0.0;
        for (double x : vs)
            sum += x;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(MetricsTest, SodZeroForIdenticalDistributions)
{
    nn::Workload w = ChainWorkload(4);  // identical layers
    Assignment a;
    a.num_segments = 2;
    a.num_pus = 2;
    a.segment_of = {0, 0, 1, 1};
    a.pu_of = {0, 1, 0, 1};
    SegmentMetrics m = ComputeMetrics(w, a);
    EXPECT_NEAR(m.sod, 0.0, 1e-9);
}

TEST(MetricsTest, ObjectiveCombinesBothTerms)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    Assignment a = EvenSegmentation(w, 6, 2);
    SegmentMetrics m = ComputeMetrics(w, a);
    EXPECT_NEAR(m.Objective(), 1.0 / m.min_ctc + m.sod, 1e-12);
    EXPECT_GT(m.min_ctc, 0.0);
}

TEST(MetricsTest, SegmentationRaisesMinCtcOverLayerwise)
{
    // The Fig. 3 story: segment CTC beats the worst layerwise CTC.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    double worst_layer = 1e30;
    for (const auto& l : w.layers)
        worst_layer = std::min(worst_layer, l.LayerCtc());
    Assignment a = EvenSegmentation(w, 6, 1);
    SegmentMetrics m = ComputeMetrics(w, a);
    EXPECT_GT(m.min_ctc, worst_layer);
}

TEST(CommsTest, IntraSegmentCrossPuEdgesReported)
{
    nn::Workload w = ChainWorkload(4);
    Assignment a;
    a.num_segments = 1;
    a.num_pus = 2;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 0, 1, 1};
    auto comms = SegmentComms(w, a, 0);
    ASSERT_EQ(comms.size(), 1u);
    EXPECT_EQ(comms[0].src_pu, 0);
    EXPECT_EQ(comms[0].dst_pu, 1);
    EXPECT_EQ(comms[0].bytes, w.layers[1].output_bytes);
}

TEST(CommsTest, SamePuEdgesExcluded)
{
    nn::Workload w = ChainWorkload(3);
    Assignment a = SingleSegmentSinglePu(w);
    EXPECT_TRUE(SegmentComms(w, a, 0).empty());
}

}  // namespace
}  // namespace seg
}  // namespace spa
