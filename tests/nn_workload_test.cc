// Unit tests for workload extraction: glue fusion, edge bytes, paths.

#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn/workload.h"

namespace spa {
namespace nn {
namespace {

int
IndexOf(const Workload& w, const std::string& name)
{
    for (int i = 0; i < w.NumLayers(); ++i)
        if (w.layers[static_cast<size_t>(i)].name == name)
            return i;
    return -1;
}

Graph
ChainGraph()
{
    Graph g("chain");
    LayerId in = g.AddInput("input", {3, 32, 32});
    LayerId c1 = g.AddConv("c1", in, 16, 3, 1, 1);
    LayerId p1 = g.AddMaxPool("p1", c1, 2, 2);
    LayerId c2 = g.AddConv("c2", p1, 32, 3, 1, 1);
    g.AddFullyConnected("fc", c2, 10);
    return g;
}

TEST(WorkloadTest, ChainStructure)
{
    Workload w = ExtractWorkload(ChainGraph());
    ASSERT_EQ(w.NumLayers(), 3);
    EXPECT_EQ(w.layers[0].name, "c1");
    EXPECT_EQ(w.layers[1].name, "c2");
    EXPECT_EQ(w.layers[2].name, "fc");
    // Edges: input->c1 (external), c1->c2, c2->fc.
    int external = 0, internal = 0;
    for (const auto& e : w.edges)
        (e.src < 0 ? external : internal)++;
    EXPECT_EQ(external, 1);
    EXPECT_EQ(internal, 2);
}

TEST(WorkloadTest, PoolingFusedIntoProducer)
{
    Workload w = ExtractWorkload(ChainGraph());
    const auto& c1 = w.layers[static_cast<size_t>(IndexOf(w, "c1"))];
    // c1 output is 16x32x32, but the pool reduces it to 16x16x16 before
    // anything is materialized.
    EXPECT_EQ(c1.output_bytes, 16 * 16 * 16);
    // c2 reads the pooled tensor.
    const auto& c2 = w.layers[static_cast<size_t>(IndexOf(w, "c2"))];
    EXPECT_EQ(c2.input_bytes, 16 * 16 * 16);
}

TEST(WorkloadTest, ExternalInputBytes)
{
    Workload w = ExtractWorkload(ChainGraph());
    const auto& c1 = w.layers[static_cast<size_t>(IndexOf(w, "c1"))];
    EXPECT_EQ(c1.input_bytes, 3 * 32 * 32);
}

TEST(WorkloadTest, BytesPerElemScales)
{
    Workload w8 = ExtractWorkload(ChainGraph(), 1);
    Workload w16 = ExtractWorkload(ChainGraph(), 2);
    for (int i = 0; i < w8.NumLayers(); ++i) {
        EXPECT_EQ(2 * w8.layers[static_cast<size_t>(i)].input_bytes,
                  w16.layers[static_cast<size_t>(i)].input_bytes);
        EXPECT_EQ(2 * w8.layers[static_cast<size_t>(i)].weight_bytes,
                  w16.layers[static_cast<size_t>(i)].weight_bytes);
        EXPECT_EQ(w8.layers[static_cast<size_t>(i)].ops,
                  w16.layers[static_cast<size_t>(i)].ops);
    }
}

TEST(WorkloadTest, ResidualAddReadsBothOperands)
{
    Graph g("res");
    LayerId in = g.AddInput("input", {8, 16, 16});
    LayerId a = g.AddConv("a", in, 8, 3, 1, 1);
    LayerId b = g.AddConv("b", a, 8, 3, 1, 1);
    LayerId s = g.AddAdd("s", b, a);
    g.AddConv("c", s, 8, 3, 1, 1);
    Workload w = ExtractWorkload(g);
    const auto& c = w.layers[static_cast<size_t>(IndexOf(w, "c"))];
    // c reads both add operands: 2 x 8x16x16.
    EXPECT_EQ(c.input_bytes, 2 * 8 * 16 * 16);
    // c has two in-edges, from a and from b.
    EXPECT_EQ(w.in_edges[static_cast<size_t>(IndexOf(w, "c"))].size(), 2u);
}

TEST(WorkloadTest, ConcatSplitsIntoBranchEdges)
{
    Graph g("cat");
    LayerId in = g.AddInput("input", {8, 16, 16});
    LayerId a = g.AddConv("a", in, 8, 1, 1, 0);
    LayerId b = g.AddConv("b", in, 24, 1, 1, 0);
    LayerId cat = g.AddConcat("cat", {a, b});
    g.AddConv("c", cat, 8, 1, 1, 0);
    Workload w = ExtractWorkload(g);
    const int c = IndexOf(w, "c");
    int64_t from_a = 0, from_b = 0;
    for (int e : w.in_edges[static_cast<size_t>(c)]) {
        const auto& edge = w.edges[static_cast<size_t>(e)];
        if (edge.src == IndexOf(w, "a"))
            from_a = edge.bytes;
        if (edge.src == IndexOf(w, "b"))
            from_b = edge.bytes;
    }
    EXPECT_EQ(from_a, 8 * 16 * 16);
    EXPECT_EQ(from_b, 24 * 16 * 16);
}

TEST(WorkloadTest, HasPathFollowsDag)
{
    Workload w = ExtractWorkload(BuildSqueezeNet());
    const int squeeze = IndexOf(w, "fire2_squeeze");
    const int e1 = IndexOf(w, "fire2_expand1");
    const int late = IndexOf(w, "conv10");
    ASSERT_GE(squeeze, 0);
    EXPECT_TRUE(w.HasPath(squeeze, e1));
    EXPECT_TRUE(w.HasPath(squeeze, late));
    EXPECT_FALSE(w.HasPath(late, squeeze));
    // Parallel expand branches are independent.
    EXPECT_FALSE(w.HasPath(e1, IndexOf(w, "fire2_expand3")));
}

TEST(WorkloadTest, LayerCtcMatchesDefinition)
{
    Workload w = ExtractWorkload(ChainGraph());
    for (const auto& l : w.layers) {
        EXPECT_NEAR(l.LayerCtc(),
                    static_cast<double>(l.ops) /
                        static_cast<double>(l.input_bytes + l.weight_bytes +
                                            l.output_bytes),
                    1e-12);
    }
}

TEST(WorkloadTest, TotalsConsistent)
{
    Graph g = BuildSqueezeNet();
    Workload w = ExtractWorkload(g);
    EXPECT_EQ(w.TotalOps(), g.TotalMacs());
    EXPECT_EQ(w.TotalWeightBytes(), g.TotalWeightElems());
}

TEST(WorkloadTest, DepthwiseLayersTagged)
{
    Workload w = ExtractWorkload(BuildMobileNetV1());
    int dw = 0, pw = 0;
    for (const auto& l : w.layers) {
        dw += l.is_depthwise;
        pw += (!l.is_depthwise && !l.is_fc && l.kernel == 1);
    }
    EXPECT_EQ(dw, 13);
    EXPECT_EQ(pw, 13);
}

TEST(WorkloadTest, AlternatingCtcPatternInSqueezeNet)
{
    // Motivation (Sec. II-B): layers alternate between low and high CTC.
    Workload w = ExtractWorkload(BuildSqueezeNet());
    int flips = 0;
    for (int i = 2; i < w.NumLayers(); ++i) {
        const double prev = w.layers[static_cast<size_t>(i - 1)].LayerCtc();
        const double prev2 = w.layers[static_cast<size_t>(i - 2)].LayerCtc();
        const double cur = w.layers[static_cast<size_t>(i)].LayerCtc();
        if ((prev > prev2 && prev > cur) || (prev < prev2 && prev < cur))
            ++flips;
    }
    EXPECT_GT(flips, w.NumLayers() / 3);
}

}  // namespace
}  // namespace nn
}  // namespace spa
