// Tests for the SystemVerilog emitter: bundle completeness, parameter
// baking, fabric wiring consistency with the Benes model, pruning, and
// determinism.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "rtl/emit.h"

namespace spa {
namespace rtl {
namespace {

hw::SpaConfig
SampleConfig()
{
    hw::SpaConfig cfg;
    cfg.pus = {hw::PuConfig{8, 16, 4096, 8192}, hw::PuConfig{4, 8, 2048, 2048},
               hw::PuConfig{8, 8, 4096, 4096}, hw::PuConfig{16, 8, 8192, 4096}};
    cfg.freq_ghz = 0.2;
    cfg.bandwidth_gbps = 5.3;
    return cfg;
}

TEST(RtlBundleTest, AllTemplateFilesPresent)
{
    noc::BenesNetwork fabric(4);
    RtlBundle bundle = GenerateRtl(SampleConfig(), 2, fabric, {});
    for (const char* name :
         {"spa_pkg.sv", "spa_pe.sv", "spa_systolic_array.sv", "spa_line_buffer.sv",
          "spa_weight_buffer.sv", "spa_benes_node.sv", "spa_benes_fabric.sv",
          "spa_pu_0.sv", "spa_pu_1.sv", "spa_pu_2.sv", "spa_pu_3.sv",
          "spa_top.sv"}) {
        EXPECT_NE(bundle.Find(name), nullptr) << name;
    }
    EXPECT_GT(bundle.TotalLines(), 300);
}

TEST(RtlBundleTest, Deterministic)
{
    noc::BenesNetwork fabric(4);
    RtlBundle a = GenerateRtl(SampleConfig(), 2, fabric, {});
    RtlBundle b = GenerateRtl(SampleConfig(), 2, fabric, {});
    ASSERT_EQ(a.files.size(), b.files.size());
    for (size_t i = 0; i < a.files.size(); ++i)
        EXPECT_EQ(a.files[i].content, b.files[i].content) << a.files[i].name;
}

TEST(RtlPuTest, DesignParametersBaked)
{
    const std::string pu = EmitPu(hw::PuConfig{8, 16, 4096, 8192}, 0);
    EXPECT_NE(pu.find("parameter int unsigned ROWS = 8"), std::string::npos);
    EXPECT_NE(pu.find("parameter int unsigned COLS = 16"), std::string::npos);
    EXPECT_NE(pu.find("AB_BYTES = 4096"), std::string::npos);
    EXPECT_NE(pu.find("WB_BYTES = 8192"), std::string::npos);
    EXPECT_NE(pu.find("module spa_pu_0"), std::string::npos);
    EXPECT_NE(pu.find("endmodule : spa_pu_0"), std::string::npos);
}

TEST(RtlTopTest, InstantiatesEveryPu)
{
    const std::string top = EmitTop(SampleConfig(), 3);
    for (int n = 0; n < 4; ++n) {
        EXPECT_NE(top.find("spa_pu_" + std::to_string(n) + " u_pu_" +
                           std::to_string(n)),
                  std::string::npos)
            << n;
    }
    EXPECT_NE(top.find("NUM_SEGMENTS = 3"), std::string::npos);
}

TEST(RtlFabricTest, NodeCountMatchesTopology)
{
    noc::BenesNetwork fabric(8);  // 5 stages x 4 nodes
    const std::string sv = EmitBenesFabric(fabric, {});
    int instances = 0;
    size_t pos = 0;
    while ((pos = sv.find("spa_benes_node #(.W(W)) u_node_", pos)) !=
           std::string::npos) {
        ++instances;
        ++pos;
    }
    EXPECT_EQ(instances, fabric.NumNodes());
    // Selection bus sized to the full node count.
    EXPECT_NE(sv.find("node_sel [" + std::to_string(fabric.NumNodes()) + "]"),
              std::string::npos);
}

TEST(RtlFabricTest, PruningDropsDeadNodes)
{
    noc::BenesNetwork fabric(8);
    // One live path only: port 0 -> port 3.
    std::vector<int> perm{3, -1, -1, -1, -1, -1, -1, -1};
    noc::BenesConfig config = fabric.RoutePermutation(perm);
    const std::string sv = EmitBenesFabric(fabric, {config});
    int instances = 0;
    size_t pos = 0;
    while ((pos = sv.find("spa_benes_node #(.W(W)) u_node_", pos)) !=
           std::string::npos) {
        ++instances;
        ++pos;
    }
    EXPECT_EQ(instances, fabric.num_stages());  // one node per stage survives
    EXPECT_NE(sv.find("// pruned node"), std::string::npos);
}

TEST(RtlFabricTest, EveryRailDriven)
{
    // Structural sanity: every boundary rail appears on the left-hand
    // side exactly once (either a node output or a pruned-park assign).
    noc::BenesNetwork fabric(4);
    const std::string sv = EmitBenesFabric(fabric, {});
    for (int b = 1; b <= fabric.num_stages(); ++b) {
        for (int r = 0; r < fabric.width(); ++r) {
            const std::string lhs =
                "rail_" + std::to_string(b) + "[" + std::to_string(r) + "]";
            // Appears as .out0(...)/.out1(...) or assign target.
            EXPECT_NE(sv.find(lhs), std::string::npos) << lhs;
        }
    }
}

TEST(RtlTemplateTest, PeHasDataflowMux)
{
    const std::string pe = EmitPe();
    EXPECT_NE(pe.find("DF_WEIGHT_STATIONARY"), std::string::npos);
    EXPECT_NE(pe.find("DF_OUTPUT_STATIONARY"), std::string::npos);
    EXPECT_NE(pe.find("psum_south = psum_north"), std::string::npos);
}

TEST(RtlTemplateTest, LineBufferEncodesEquationOne)
{
    const std::string lb = EmitLineBuffer();
    EXPECT_NE(lb.find("(ch / ROWS) + col * WORDS_PCOL"), std::string::npos);
    EXPECT_NE(lb.find("(row % WINDOW) * WI * WORDS_PCOL"), std::string::npos);
}

TEST(RtlWriteTest, BundleLandsOnDisk)
{
    noc::BenesNetwork fabric(4);
    RtlBundle bundle = GenerateRtl(SampleConfig(), 2, fabric, {});
    const std::string dir = testing::TempDir() + "/spa_rtl_test";
    WriteBundle(bundle, dir);
    for (const auto& f : bundle.files) {
        std::ifstream in(dir + "/" + f.name);
        ASSERT_TRUE(in.good()) << f.name;
        std::ostringstream ss;
        ss << in.rdbuf();
        EXPECT_EQ(ss.str(), f.content) << f.name;
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rtl
}  // namespace spa
