// Tests for the segmentation solvers (heuristic and MIP).

#include <gtest/gtest.h>

#include "nn/models.h"
#include "seg/segmenter.h"

namespace spa {
namespace seg {
namespace {

nn::Workload
ChainWorkload(int num_layers, int64_t channels = 8)
{
    nn::Graph g("chain");
    nn::LayerId x = g.AddInput("input", {channels, 16, 16});
    for (int i = 0; i < num_layers; ++i)
        x = g.AddConv("c" + std::to_string(i), x, channels, 3, 1, 1);
    return nn::ExtractWorkload(g);
}

class SegmenterParamTest
    : public testing::TestWithParam<std::tuple<const char*, int, int>>
{
};

TEST_P(SegmenterParamTest, HeuristicProducesValidAssignments)
{
    const auto& [model, segments, pus] = GetParam();
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
    HeuristicSegmenter segmenter;
    Assignment a;
    ASSERT_TRUE(segmenter.Solve(w, segments, pus, a))
        << model << " S=" << segments << " N=" << pus;
    EXPECT_EQ(CheckConstraints(w, a), "") << model;
}

INSTANTIATE_TEST_SUITE_P(
    Models, SegmenterParamTest,
    testing::Values(std::make_tuple("squeezenet", 4, 3),
                    std::make_tuple("squeezenet", 5, 4),
                    std::make_tuple("mobilenet_v1", 6, 2),
                    std::make_tuple("mobilenet_v2", 8, 4),
                    std::make_tuple("resnet18", 3, 4),
                    std::make_tuple("resnet50", 6, 4),
                    std::make_tuple("inception_v1", 6, 4),
                    std::make_tuple("alexnet", 2, 4),
                    std::make_tuple("alexnet_conv_tower", 1, 4),
                    std::make_tuple("alexnet_conv_tower", 2, 4),
                    std::make_tuple("efficientnet_b0", 8, 3)),
    [](const testing::TestParamInfo<std::tuple<const char*, int, int>>& info) {
        return std::string(std::get<0>(info.param)) + "_S" +
               std::to_string(std::get<1>(info.param)) + "_N" +
               std::to_string(std::get<2>(info.param));
    });

TEST(HeuristicSegmenterTest, ScalesToResNet152)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildResNet152());
    HeuristicSegmenter segmenter;
    Assignment a;
    ASSERT_TRUE(segmenter.Solve(w, 10, 4, a));
    EXPECT_EQ(CheckConstraints(w, a), "");
}

TEST(HeuristicSegmenterTest, RejectsImpossibleShape)
{
    nn::Workload w = ChainWorkload(5);
    HeuristicSegmenter segmenter;
    Assignment a;
    EXPECT_FALSE(segmenter.Solve(w, 3, 2, a));  // needs >= 6 layers
}

TEST(HeuristicSegmenterTest, SegmentationBeatsLayerwiseCtc)
{
    // The whole point: min segment CTC must beat the worst layer CTC.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    HeuristicSegmenter segmenter;
    Assignment a;
    ASSERT_TRUE(segmenter.Solve(w, 4, 3, a));
    SegmentMetrics m = ComputeMetrics(w, a);
    double worst_layer = 1e30;
    for (const auto& l : w.layers)
        worst_layer = std::min(worst_layer, l.LayerCtc());
    EXPECT_GT(m.min_ctc, 2.0 * worst_layer);
}

TEST(HeuristicSegmenterTest, BeatsEvenStrawmanOnObjective)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    HeuristicSegmenter segmenter;
    Assignment tuned;
    ASSERT_TRUE(segmenter.Solve(w, 5, 2, tuned));
    // 6-layer even segmentation (with 26 layers -> 5 segments, 2 PUs).
    Assignment even = EvenSegmentation(w, 6, 2);
    ASSERT_EQ(even.num_segments, 5);
    EXPECT_LE(ComputeMetrics(w, tuned).Objective(),
              ComputeMetrics(w, even).Objective());
}

TEST(MipSegmenterTest, SolvesTinyChainOptimally)
{
    nn::Workload w = ChainWorkload(4);
    MipSegmenter segmenter;
    Assignment a;
    ASSERT_TRUE(segmenter.Solve(w, 2, 2, a));
    EXPECT_EQ(CheckConstraints(w, a), "");
    // Identical layers: the optimum splits 2+2 with one layer per PU,
    // giving SOD == 0.
    SegmentMetrics m = ComputeMetrics(w, a);
    EXPECT_NEAR(m.sod, 0.0, 1e-9);
}

TEST(MipSegmenterTest, SolvesBranchyGraph)
{
    nn::Graph g("branchy");
    nn::LayerId in = g.AddInput("input", {8, 16, 16});
    nn::LayerId a1 = g.AddConv("a1", in, 8, 3, 1, 1);
    nn::LayerId b1 = g.AddConv("b1", a1, 8, 3, 1, 1);
    nn::LayerId b2 = g.AddConv("b2", a1, 8, 3, 1, 1);
    nn::LayerId join = g.AddAdd("join", b1, b2);
    g.AddConv("c1", join, 8, 3, 1, 1);
    nn::Workload w = nn::ExtractWorkload(g);

    MipSegmenter segmenter;
    Assignment assign;
    ASSERT_TRUE(segmenter.Solve(w, 2, 2, assign));
    EXPECT_EQ(CheckConstraints(w, assign), "");
}

TEST(MipSegmenterTest, MatchesOrBeatsHeuristicOnSmallInstances)
{
    nn::Workload w = ChainWorkload(8);
    MipSegmenter exact;
    HeuristicSegmenter heuristic;
    Assignment a_exact, a_heur;
    ASSERT_TRUE(exact.Solve(w, 2, 2, a_exact));
    ASSERT_TRUE(heuristic.Solve(w, 2, 2, a_heur));
    EXPECT_LE(ComputeMetrics(w, a_exact).Objective(),
              ComputeMetrics(w, a_heur).Objective() + 1e-6);
}

TEST(SolveSegmentationTest, EndToEnd)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNetConvTower());
    Assignment a;
    ASSERT_TRUE(SolveSegmentation(w, 2, 4, a));
    EXPECT_EQ(CheckConstraints(w, a), "");
    EXPECT_EQ(a.num_segments, 2);
    EXPECT_EQ(a.num_pus, 4);
}

TEST(SolveSegmentationTest, CaseStudySingleSegmentFourPus)
{
    // The Table VI configuration: AlexNet conv tower, 1 segment of 4
    // PUs is infeasible (10 layers over 4 PUs in *2* segments needs 8);
    // with S=2,N=4 the conv pairs spread across PUs.
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNetConvTower());
    Assignment a;
    ASSERT_TRUE(SolveSegmentation(w, 1, 4, a));
    SegmentMetrics m = ComputeMetrics(w, a);
    EXPECT_GT(m.min_ctc, 0.0);
}

}  // namespace
}  // namespace seg
}  // namespace spa
