/**
 * @file
 * Op-descriptor registry invariants plus zoo-wide round-trip
 * properties: every enum member must carry a complete descriptor, and
 * serializing any zoo model through the JSON frontend must preserve
 * shapes, workload fingerprints and cost totals exactly.
 */

#include <gtest/gtest.h>

#include "autoseg/session.h"
#include "cost/cost.h"
#include "hw/config.h"
#include "nn/loader.h"
#include "nn/models.h"
#include "nn/op_registry.h"
#include "nn/workload.h"

namespace spa {
namespace {

TEST(OpRegistry, EveryEnumMemberHasACompleteDescriptor)
{
    const auto& ops = nn::AllOps();
    ASSERT_EQ(static_cast<int>(ops.size()), nn::kNumLayerTypes);
    for (int i = 0; i < nn::kNumLayerTypes; ++i) {
        const nn::OpDescriptor& d = ops[static_cast<size_t>(i)];
        SCOPED_TRACE(d.name);
        EXPECT_EQ(static_cast<int>(d.type), i) << "table out of enum order";
        EXPECT_STRNE(d.name, "?");
        EXPECT_GT(std::string(d.name).size(), 0u);

        // The wire name must round-trip through the by-name lookup.
        const nn::OpDescriptor* by_name = nn::OpInfoByName(d.name);
        ASSERT_NE(by_name, nullptr);
        EXPECT_EQ(by_name->type, d.type);
        StatusOr<nn::LayerType> parsed = nn::LayerTypeFromNameOr(d.name);
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(*parsed, d.type);

        // Inputs get their shape externally; everything else infers it.
        if (d.type == nn::LayerType::kInput) {
            EXPECT_EQ(d.infer_shape, nullptr);
            continue;
        }
        EXPECT_NE(d.infer_shape, nullptr);
        EXPECT_NE(d.json_build, nullptr);

        // Compute ops must know their work and how to reach the cost
        // model; weight-carrying ops must know their footprint.
        if (d.caps.compute) {
            EXPECT_NE(d.macs, nullptr);
            EXPECT_NE(d.lower, nullptr);
        } else {
            EXPECT_EQ(d.lower, nullptr);
        }
        if (d.caps.has_weights) {
            EXPECT_TRUE(d.caps.compute);
            EXPECT_NE(d.weight_elems, nullptr);
        }
    }
}

TEST(OpRegistry, UnknownNamesAreStructuredErrors)
{
    EXPECT_EQ(nn::OpInfoByName("warp"), nullptr);
    StatusOr<nn::LayerType> r = nn::LayerTypeFromNameOr("warp");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("warp"), std::string::npos);
}

TEST(OpRegistry, DwconvAliasBuildsDepthwiseConv)
{
    EXPECT_NE(nn::OpAliasBuilder("dwconv"), nullptr);
    EXPECT_EQ(nn::OpAliasBuilder("conv"), nullptr) << "real ops are not aliases";
}

/** Cost fingerprint of a workload: cycles + traffic over a fixed PU. */
int64_t
CostTotal(const cost::CostModel& cost_model, const nn::Workload& w)
{
    hw::PuConfig pu;
    pu.rows = 8;
    pu.cols = 8;
    pu.act_buffer_bytes = 64 << 10;
    pu.weight_buffer_bytes = 64 << 10;
    int64_t total = 0;
    for (const nn::WorkloadLayer& l : w.layers) {
        for (hw::Dataflow df :
             {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary}) {
            total += cost_model.ComputeCycles(l, pu, df);
            const cost::BufferTraffic t = cost_model.OnChipTraffic(l, pu, df);
            total += t.weight_reads + t.act_reads + t.psum_accesses + t.out_writes;
        }
    }
    return total;
}

TEST(ZooRoundTrip, JsonPreservesShapesFingerprintsAndCost)
{
    cost::CostModel cost_model;
    for (const std::string& name : nn::AllZooModelNames()) {
        SCOPED_TRACE(name);
        const nn::Graph graph = nn::BuildModel(name);
        StatusOr<nn::Graph> reloaded =
            nn::GraphFromJsonOr(nn::GraphToJson(graph));
        ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

        ASSERT_EQ(graph.layers().size(), reloaded->layers().size());
        for (size_t i = 0; i < graph.layers().size(); ++i) {
            const nn::Layer& a = graph.layers()[i];
            const nn::Layer& b = reloaded->layers()[i];
            SCOPED_TRACE(a.name());
            EXPECT_EQ(a.type(), b.type());
            EXPECT_EQ(a.out_shape(), b.out_shape());
            EXPECT_EQ(a.Macs(), b.Macs());
            EXPECT_EQ(a.WeightElems(), b.WeightElems());
        }

        const nn::Workload w = nn::ExtractWorkload(graph);
        const nn::Workload w2 = nn::ExtractWorkload(*reloaded);
        EXPECT_EQ(autoseg::Session::WorkloadFingerprint(w),
                  autoseg::Session::WorkloadFingerprint(w2));
        EXPECT_EQ(CostTotal(cost_model, w), CostTotal(cost_model, w2));
    }
}

}  // namespace
}  // namespace spa
