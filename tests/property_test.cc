// Cross-module property tests: invariants that must hold over wide
// parameter sweeps (every zoo model, grids of (S, N), every platform
// budget), rather than at hand-picked points.

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "autoseg/autoseg.h"
#include "autoseg/energy.h"
#include "baselines/models.h"
#include "common/rng.h"
#include "common/util.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace spa {
namespace {

// ---------------------------------------------------------------------
// Segmentation invariants over a model x (S, N) grid.
// ---------------------------------------------------------------------

class SegmentationGridTest
    : public testing::TestWithParam<std::tuple<const char*, int, int>>
{
};

TEST_P(SegmentationGridTest, SolverInvariants)
{
    const auto& [model, segments, pus] = GetParam();
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
    seg::HeuristicSegmenter segmenter;
    seg::Assignment a;
    if (w.NumLayers() < segments * pus) {
        EXPECT_FALSE(segmenter.Solve(w, segments, pus, a));
        return;
    }
    ASSERT_TRUE(segmenter.Solve(w, segments, pus, a));
    // 1. Constraints (Eqs. 2-4) always hold.
    EXPECT_EQ(seg::CheckConstraints(w, a), "");
    seg::SegmentMetrics m = seg::ComputeMetrics(w, a);
    // 2. MACs partition exactly.
    int64_t ops = 0;
    for (int64_t v : m.seg_ops)
        ops += v;
    EXPECT_EQ(ops, w.TotalOps());
    // 3. Segment DRAM never exceeds layerwise DRAM and never drops
    //    below the irreducible floor (weights + model IO).
    int64_t seg_access = 0;
    for (int64_t v : m.seg_access)
        seg_access += v;
    int64_t layerwise = 0;
    for (const auto& l : w.layers)
        layerwise += l.AccessBytes();
    int64_t floor = w.TotalWeightBytes();
    for (const auto& e : w.edges)
        if (e.src < 0)
            floor += e.bytes;
    for (int l = 0; l < w.NumLayers(); ++l)
        if (w.out_edges[static_cast<size_t>(l)].empty())
            floor += w.layers[static_cast<size_t>(l)].output_bytes;
    EXPECT_LE(seg_access, layerwise);
    EXPECT_GE(seg_access, floor);
    // 4. Distributions are stochastic vectors.
    for (const auto& vs : m.v) {
        double sum = 0.0;
        for (double v : vs) {
            EXPECT_GE(v, 0.0);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
    // 5. SOD is bounded by 2 per segment pair.
    EXPECT_LE(m.sod, 2.0 * segments * (segments - 1) / 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SegmentationGridTest,
    testing::Combine(testing::Values("squeezenet", "mobilenet_v2", "resnet50",
                                     "inception_v1"),
                     testing::Values(1, 2, 4, 8), testing::Values(2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<const char*, int, int>>& info) {
        return std::string(std::get<0>(info.param)) + "_S" +
               std::to_string(std::get<1>(info.param)) + "_N" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Allocator invariants over every platform budget.
// ---------------------------------------------------------------------

class AllocatorBudgetTest : public testing::TestWithParam<const char*>
{
};

TEST_P(AllocatorBudgetTest, RespectsEveryBudget)
{
    const hw::Platform budget = hw::PlatformByName(GetParam());
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::HeuristicSegmenter segmenter;
    seg::Assignment a;
    ASSERT_TRUE(segmenter.Solve(w, 4, 3, a));
    cost::CostModel cost_model;
    alloc::Allocator allocator(cost_model);
    for (auto goal : {alloc::DesignGoal::kLatency, alloc::DesignGoal::kThroughput}) {
        auto result = allocator.Allocate(w, a, budget, goal);
        ASSERT_TRUE(result.ok) << budget.name;
        EXPECT_LE(result.config.TotalPes() * result.config.batch,
                  budget.MacsPerCycle())
            << budget.name;
        EXPECT_LE(result.config.TotalBufferBytes() * result.config.batch,
                  budget.onchip_bytes)
            << budget.name;
        for (const auto& pu : result.config.pus) {
            EXPECT_TRUE(IsPow2(pu.rows));
            EXPECT_TRUE(IsPow2(pu.cols));
            EXPECT_GT(pu.act_buffer_bytes, 0);
            EXPECT_GT(pu.weight_buffer_bytes, 0);
        }
        EXPECT_GT(result.latency_seconds, 0.0);
        EXPECT_GT(result.pe_utilization, 0.0);
        EXPECT_LE(result.pe_utilization, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocatorBudgetTest,
                         testing::Values("eyeriss", "nvdla_small", "nvdla_large",
                                         "edgetpu", "zu3eg", "7z045", "ku115"),
                         [](const testing::TestParamInfo<const char*>& info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------------
// Cost-model monotonicity properties.
// ---------------------------------------------------------------------

TEST(CostMonotonicityTest, MorePesNeverSlower)
{
    cost::CostModel model;
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    for (const auto& l : w.layers) {
        for (hw::Dataflow df :
             {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary}) {
            int64_t prev = INT64_MAX;
            for (int64_t size = 4; size <= 32; size *= 2) {
                hw::PuConfig pu{size, size, 1 << 16, 1 << 16};
                const int64_t cycles = model.ComputeCycles(l, pu, df);
                EXPECT_LE(cycles, prev) << l.name << " size " << size;
                prev = cycles;
            }
        }
    }
}

TEST(CostMonotonicityTest, BiggerBuffersNeverMoreDram)
{
    cost::CostModel model;
    nn::Workload w = nn::ExtractWorkload(nn::BuildResNet18());
    for (const auto& l : w.layers) {
        for (hw::Dataflow df :
             {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary}) {
            int64_t prev = INT64_MAX;
            for (int64_t bytes = 1 << 10; bytes <= 1 << 22; bytes <<= 3) {
                hw::PuConfig pu{8, 8, bytes, bytes};
                const int64_t dram = model.DramBytesLayerwise(l, pu, df, 1);
                EXPECT_LE(dram, prev) << l.name;
                prev = dram;
            }
        }
    }
}

TEST(CostMonotonicityTest, CyclesTimesPesBoundedBelowByOps)
{
    // No configuration can beat the ideal ops/PE bound.
    cost::CostModel model;
    nn::Workload w = nn::ExtractWorkload(nn::BuildMobileNetV2());
    Rng rng(3);
    for (const auto& l : w.layers) {
        for (int trial = 0; trial < 4; ++trial) {
            const int64_t rows = 1LL << rng.UniformInt(1, 5);
            const int64_t cols = 1LL << rng.UniformInt(1, 5);
            hw::PuConfig pu{rows, cols, 1 << 16, 1 << 16};
            for (hw::Dataflow df : {hw::Dataflow::kWeightStationary,
                                    hw::Dataflow::kOutputStationary}) {
                EXPECT_GE(model.ComputeCycles(l, pu, df) * pu.NumPes(), l.ops)
                    << l.name;
            }
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end invariants per zoo model.
// ---------------------------------------------------------------------

class EndToEndModelTest : public testing::TestWithParam<const char*>
{
};

TEST_P(EndToEndModelTest, EngineAndBaselinesConsistent)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(GetParam()));
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    autoseg::Engine engine(cost_model, options);
    const hw::Platform budget = hw::NvdlaSmallBudget();
    auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency);
    ASSERT_TRUE(spa.ok) << GetParam();

    // Energy breakdown sane; fabric share small.
    auto energy =
        autoseg::EvaluateSpaEnergy(cost_model, w, spa.assignment, spa.alloc);
    EXPECT_GT(energy.TotalPj(), 0.0);
    EXPECT_LT(energy.other_pj / energy.TotalPj(), 0.08) << GetParam();

    // The SPA design's DRAM traffic beats the layerwise baseline's.
    baselines::NoPipelineModel no_pipe(cost_model);
    auto base = no_pipe.Evaluate(w, budget);
    int64_t spa_dram = 0;
    for (int s = 0; s < spa.assignment.num_segments; ++s)
        spa_dram += seg::SegmentAccessBytes(w, spa.assignment, s);
    EXPECT_LE(spa_dram, base.dram_bytes) << GetParam();

    // At this bandwidth-starved budget SPA must win end to end.
    EXPECT_LT(spa.alloc.latency_seconds, base.latency_seconds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Zoo, EndToEndModelTest,
                         testing::Values("alexnet", "vgg16", "mobilenet_v1",
                                         "mobilenet_v2", "resnet18", "squeezenet",
                                         "inception_v1", "efficientnet_b0"),
                         [](const testing::TestParamInfo<const char*>& info) {
                             return std::string(info.param);
                         });

}  // namespace
}  // namespace spa
