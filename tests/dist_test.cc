// Fault-tolerant distributed sweep (src/dist): shard planning, the
// strict shard-checkpoint merge, the worker service, the coordinator's
// lease/steal/degrade machinery — and the headline guarantee: a sweep
// distributed over workers, with workers SIGKILLed mid-run, merges to a
// result bitwise-identical to an uninterrupted single-process run.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autoseg/checkpoint.h"
#include "autoseg/session.h"
#include "common/fault.h"
#include "cost/cost.h"
#include "dist/backoff.h"
#include "dist/coordinator.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "hw/platform.h"
#include "nn/models.h"
#include "nn/workload.h"
#include "obs/stats.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace spa {
namespace dist {
namespace {

// ---- Shared fixtures. ----

/** The cheapest real unit: 3 pairs, ~1s of evaluation. */
autoseg::CoDesignOptions
TinySearch()
{
    autoseg::CoDesignOptions options;
    options.pu_candidates = {2};
    options.max_segments = 4;
    options.mip_node_budget = 64;
    options.jobs = 2;
    return options;
}

/** A meatier unit (10 pairs, a few seconds) for the chaos tests. */
autoseg::CoDesignOptions
ChaosSearch()
{
    autoseg::CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 6;
    options.mip_node_budget = 256;
    options.jobs = 2;
    return options;
}

const char* kModel = "alexnet_conv_tower";

nn::Workload
ConvTowerWorkload()
{
    return nn::ExtractWorkload(nn::BuildModel(kModel));
}

std::string
FreshDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + "spa_dist_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** The canonical bitwise-identity check: the served JSON of both
 * results must be byte-for-byte equal. */
void
ExpectByteIdentical(const autoseg::CoDesignResult& got,
                    const autoseg::CoDesignResult& want,
                    const hw::Platform& platform, alloc::DesignGoal goal)
{
    const nn::Workload w = ConvTowerWorkload();
    EXPECT_EQ(serve::ResultToJson(w, platform, goal, got).Dump(),
              serve::ResultToJson(w, platform, goal, want).Dump());
}

/** A synthetic shard checkpoint whose entries match the walk. */
autoseg::EngineCheckpoint
MakeShard(const std::vector<std::pair<int, int>>& pairs, int64_t begin,
          int64_t end, int64_t completed)
{
    autoseg::EngineCheckpoint ck;
    ck.model = "m";
    ck.platform = "p";
    ck.goal = "latency";
    ck.pairs = pairs;
    ck.shard_begin = begin;
    ck.shard_end = end;
    for (int64_t i = 0; i < completed; ++i) {
        autoseg::EngineCheckpoint::Entry entry;
        entry.record.num_segments = pairs[static_cast<size_t>(begin + i)].first;
        entry.record.num_pus = pairs[static_cast<size_t>(begin + i)].second;
        ck.completed.push_back(entry);
    }
    return ck;
}

const std::vector<std::pair<int, int>> kWalk = {{2, 2}, {3, 2}, {4, 2},
                                                {2, 4}, {4, 4}, {6, 4}};

// ---- Backoff. ----

TEST(BackoffTest, DeterministicGrowingAndCapped)
{
    BackoffPolicy policy;  // base 50ms, max 2000ms, jitter 0.5
    for (int attempt = 0; attempt < 12; ++attempt) {
        const int64_t a = BackoffDelayMs(policy, attempt, /*seed=*/7);
        const int64_t b = BackoffDelayMs(policy, attempt, /*seed=*/7);
        EXPECT_EQ(a, b) << "attempt " << attempt;
        EXPECT_GE(a, std::min<int64_t>(policy.max_ms,
                                       policy.base_ms << std::min(attempt, 6)));
        EXPECT_LE(a, policy.max_ms + policy.max_ms / 2);
    }
    // Different seeds jitter differently somewhere in the schedule.
    bool differs = false;
    for (int attempt = 0; attempt < 12; ++attempt)
        differs |= BackoffDelayMs(policy, attempt, 1) !=
                   BackoffDelayMs(policy, attempt, 2);
    EXPECT_TRUE(differs);
}

// ---- Shard planning. ----

TEST(ShardPlanTest, PartitionTilesTheRangeExactly)
{
    EXPECT_EQ(PartitionRange(10, 4),
              (std::vector<std::pair<int64_t, int64_t>>{
                  {0, 4}, {4, 8}, {8, 10}}));
    EXPECT_EQ(PartitionRange(3, 100),
              (std::vector<std::pair<int64_t, int64_t>>{{0, 3}}));
    // shard_pairs < 1 is clamped, num_pairs == 0 yields no shards.
    EXPECT_EQ(PartitionRange(2, 0),
              (std::vector<std::pair<int64_t, int64_t>>{{0, 1}, {1, 2}}));
    EXPECT_TRUE(PartitionRange(0, 4).empty());
}

TEST(ShardPlanTest, CheckpointFileNamesAreRangeUnique)
{
    const std::string a = ShardCheckpointFile("d", "m@p:latency", 0, 4);
    const std::string b = ShardCheckpointFile("d", "m@p:latency", 4, 8);
    EXPECT_NE(a, b);
    EXPECT_NE(a, MergedCheckpointFile("d", "m@p:latency"));
    EXPECT_EQ(TaskId("m", "p", "latency"), "m@p:latency");
}

// ---- Merge edge cases (the last line of defense). ----

TEST(MergeTest, TilingShardsMergeIntoTheFullWalk)
{
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 2, 4, 2));  // out of order on purpose
    shards.push_back(MakeShard(kWalk, 0, 2, 2));
    shards.push_back(MakeShard(kWalk, 4, 6, 2));
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->shard_begin, 0);
    EXPECT_EQ(merged->ResolvedShardEnd(), 6);
    ASSERT_EQ(merged->completed.size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(merged->completed[i].record.num_segments, kWalk[i].first);
        EXPECT_EQ(merged->completed[i].record.num_pus, kWalk[i].second);
    }
}

TEST(MergeTest, AcceptsAStealSplitPrefixPlusRemainder)
{
    // A straggler cancelled after 1 of [0, 4); the thief ran [1, 4).
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 0, 4, 1));
    shards.push_back(MakeShard(kWalk, 1, 4, 3));
    shards.push_back(MakeShard(kWalk, 4, 6, 2));
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->completed.size(), 6u);
}

TEST(MergeTest, RejectsForeignFingerprint)
{
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 0, 3, 3));
    shards.push_back(MakeShard(kWalk, 3, 6, 3));
    shards[1].model = "somebody_else";
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, RejectsDuplicateShard)
{
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 0, 3, 3));
    shards.push_back(MakeShard(kWalk, 0, 3, 3));
    shards.push_back(MakeShard(kWalk, 3, 6, 3));
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, RejectsOverlappingShards)
{
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 0, 4, 4));
    shards.push_back(MakeShard(kWalk, 2, 6, 4));
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, RejectsGapsIncludingShortPrefixes)
{
    {
        std::vector<autoseg::EngineCheckpoint> shards;
        shards.push_back(MakeShard(kWalk, 0, 2, 2));
        shards.push_back(MakeShard(kWalk, 4, 6, 2));  // [2, 4) missing
        StatusOr<autoseg::EngineCheckpoint> merged =
            autoseg::MergeShardCheckpoints(std::move(shards));
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
    }
    {
        // A prefix that stopped short with nobody covering its tail.
        std::vector<autoseg::EngineCheckpoint> shards;
        shards.push_back(MakeShard(kWalk, 0, 4, 2));
        shards.push_back(MakeShard(kWalk, 4, 6, 2));
        StatusOr<autoseg::EngineCheckpoint> merged =
            autoseg::MergeShardCheckpoints(std::move(shards));
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
    }
}

TEST(MergeTest, RejectsRecordSkew)
{
    std::vector<autoseg::EngineCheckpoint> shards;
    shards.push_back(MakeShard(kWalk, 0, 3, 3));
    shards.push_back(MakeShard(kWalk, 3, 6, 3));
    shards[1].completed[1].record.num_segments = 99;  // not the walk's pair
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, TornShardFileIsAStructuredError)
{
    const std::string dir = FreshDir("torn");
    const std::string path = dir + "/torn.shard.json";
    {
        // A checkpoint cut off mid-document, as a crash during a
        // non-atomic copy would leave it.
        std::ofstream out(path);
        out << R"({"format": "spa.autoseg.checkpoint.v1", "model": "m", "pa)";
    }
    StatusOr<autoseg::EngineCheckpoint> loaded = autoseg::LoadCheckpoint(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

    {
        std::ofstream out(path);
        out << "not json at all\n";
    }
    loaded = autoseg::LoadCheckpoint(path);
    ASSERT_FALSE(loaded.ok());
}

// ---- Session sharding: the primitive under the whole subsystem. ----

TEST(SessionShardTest, ShardedRunsMergeBitwiseIdenticalToSerial)
{
    const cost::CostModel cost_model;
    const autoseg::Session session(cost_model,
                                   autoseg::SessionOptions{2, true});
    const nn::Workload w = ConvTowerWorkload();
    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    const autoseg::CoDesignOptions search = TinySearch();

    const autoseg::CoDesignResult serial =
        session.Run(w, platform, goal, search);

    const std::vector<std::pair<int, int>> pairs =
        autoseg::Session::EnumeratePairs(w, search);
    ASSERT_GE(pairs.size(), 2u);
    const std::string dir = FreshDir("session_shards");

    std::vector<autoseg::EngineCheckpoint> fragments;
    for (const auto& [begin, end] :
         PartitionRange(static_cast<int64_t>(pairs.size()), 1)) {
        autoseg::CoDesignOptions shard = search;
        shard.shard_begin = begin;
        shard.shard_end = end;
        shard.checkpoint_every = 1;
        shard.checkpoint_path = ShardCheckpointFile(dir, "t", begin, end);
        const autoseg::CoDesignResult fragment =
            session.Run(w, platform, goal, shard);
        EXPECT_TRUE(fragment.status.ok()) << fragment.status.ToString();
        StatusOr<autoseg::EngineCheckpoint> ck =
            autoseg::LoadCheckpoint(shard.checkpoint_path);
        ASSERT_TRUE(ck.ok()) << ck.status().ToString();
        fragments.push_back(std::move(*ck));
    }

    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(fragments));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    const std::string merged_path = MergedCheckpointFile(dir, "t");
    ASSERT_TRUE(autoseg::SaveCheckpoint(merged_path, *merged).ok());

    autoseg::CoDesignOptions resume = search;
    resume.resume_path = merged_path;
    const autoseg::CoDesignResult distributed =
        session.Run(w, platform, goal, resume);
    ExpectByteIdentical(distributed, serial, platform, goal);
}

TEST(SessionShardTest, CancelledShardLeavesAMergeablePrefix)
{
    const cost::CostModel cost_model;
    const autoseg::Session session(cost_model,
                                   autoseg::SessionOptions{2, true});
    const nn::Workload w = ConvTowerWorkload();
    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    const autoseg::CoDesignOptions search = TinySearch();
    const int64_t num_pairs = static_cast<int64_t>(
        autoseg::Session::EnumeratePairs(w, search).size());
    ASSERT_GE(num_pairs, 2);
    const std::string dir = FreshDir("cancel");

    // The straggler: cancelled after its first checkpointed pair.
    std::atomic<int64_t> progress{0};
    std::atomic<bool> cancel{false};
    autoseg::CoDesignOptions straggler = search;
    straggler.shard_begin = 0;
    straggler.shard_end = num_pairs;
    straggler.checkpoint_every = 1;
    straggler.checkpoint_path = ShardCheckpointFile(dir, "t", 0, num_pairs);
    straggler.progress = &progress;
    straggler.cancel = &cancel;

    autoseg::CoDesignResult cancelled;
    std::thread runner([&] {
        cancelled = session.Run(w, platform, goal, straggler);
    });
    while (progress.load() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    cancel.store(true);
    runner.join();

    const int64_t done = progress.load();
    ASSERT_GE(done, 1);
    ASSERT_LT(done, num_pairs) << "cancel landed after the walk finished; "
                                  "nothing left to steal";
    EXPECT_EQ(cancelled.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(cancelled.truncated);

    // The thief: the remainder as its own shard.
    autoseg::CoDesignOptions thief = search;
    thief.shard_begin = done;
    thief.shard_end = num_pairs;
    thief.checkpoint_every = 1;
    thief.checkpoint_path = ShardCheckpointFile(dir, "t", done, num_pairs);
    const autoseg::CoDesignResult remainder =
        session.Run(w, platform, goal, thief);
    EXPECT_TRUE(remainder.status.ok()) << remainder.status.ToString();

    std::vector<autoseg::EngineCheckpoint> fragments;
    for (const std::string& path : {straggler.checkpoint_path,
                                    thief.checkpoint_path}) {
        StatusOr<autoseg::EngineCheckpoint> ck = autoseg::LoadCheckpoint(path);
        ASSERT_TRUE(ck.ok()) << ck.status().ToString();
        fragments.push_back(std::move(*ck));
    }
    StatusOr<autoseg::EngineCheckpoint> merged =
        autoseg::MergeShardCheckpoints(std::move(fragments));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();

    const std::string merged_path = MergedCheckpointFile(dir, "t");
    ASSERT_TRUE(autoseg::SaveCheckpoint(merged_path, *merged).ok());
    autoseg::CoDesignOptions resume = search;
    resume.resume_path = merged_path;
    ExpectByteIdentical(session.Run(w, platform, goal, resume),
                        session.Run(w, platform, goal, search), platform,
                        goal);
}

// ---- The worker service. ----

json::Value
ShardRunRequest(const std::string& task, int64_t begin, int64_t end,
                bool resume = false)
{
    json::Value req;
    req["method"] = "shard_run";
    req["model"] = kModel;
    req["platform"] = "eyeriss";
    req["goal"] = "latency";
    json::Value search;
    json::Array pus;
    pus.push_back(json::Value(2));
    search["pus"] = json::Value(std::move(pus));
    search["max_segments"] = 4;
    req["search"] = std::move(search);
    json::Value budget;
    budget["mip_node_budget"] = 64;
    req["budget"] = std::move(budget);
    json::Value shard;
    shard["task"] = task;
    shard["begin"] = begin;
    shard["end"] = end;
    if (resume)
        shard["resume"] = true;
    req["shard"] = std::move(shard);
    return req;
}

json::Value
ShardControlRequest(const char* method, const std::string& task,
                    int64_t begin = 0, int64_t end = -1)
{
    json::Value req;
    req["method"] = std::string(method);
    json::Value shard;
    shard["task"] = task;
    if (begin != 0)
        shard["begin"] = begin;
    if (end >= 0)
        shard["end"] = end;
    req["shard"] = std::move(shard);
    return req;
}

TEST(WorkerServerTest, RunsAShardToCompletionOverTheWire)
{
    const std::string dir = FreshDir("worker");
    cost::CostModel cost_model;
    WorkerOptions options;
    options.shard_dir = dir;
    options.jobs = 2;
    options.checkpoint_every = 1;
    WorkerServer worker(cost_model, options);
    ASSERT_TRUE(worker.Start().ok());

    serve::Client client;
    ASSERT_TRUE(client.Connect(worker.port()).ok());

    json::Value ping;
    ping["method"] = std::string("ping");
    StatusOr<json::Value> pong = client.Call(ping);
    ASSERT_TRUE(pong.ok());
    EXPECT_TRUE(pong->GetBool("worker", false));

    StatusOr<json::Value> accepted =
        client.Call(ShardRunRequest("t", 0, 2));
    ASSERT_TRUE(accepted.ok());
    ASSERT_TRUE(accepted->GetBool("ok", false))
        << accepted->GetString("error", "");
    EXPECT_TRUE(accepted->GetBool("accepted", false));
    EXPECT_FALSE(accepted->GetBool("resumed", true));

    // Heartbeat until the slot reports done.
    std::string state;
    for (int i = 0; i < 600; ++i) {
        StatusOr<json::Value> poll =
            client.Call(ShardControlRequest("shard_poll", "t"));
        ASSERT_TRUE(poll.ok());
        state = poll->GetString("state", "");
        if (state == "done" || state == "failed")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(state, "done");

    StatusOr<autoseg::EngineCheckpoint> ck =
        autoseg::LoadCheckpoint(ShardCheckpointFile(dir, "t", 0, 2));
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    EXPECT_EQ(ck->shard_begin, 0);
    EXPECT_EQ(ck->shard_end, 2);
    EXPECT_EQ(ck->completed.size(), 2u);

    // The worker's exposition carries the dist.worker families.
    json::Value metrics;
    metrics["method"] = std::string("metrics");
    StatusOr<json::Value> exposition = client.Call(metrics);
    ASSERT_TRUE(exposition.ok());
    EXPECT_NE(exposition->GetString("exposition", "").find(
                  "spa_dist_worker_shards_accepted"),
              std::string::npos);
    worker.Stop();
}

TEST(WorkerServerTest, RefusesWhatItCannotServe)
{
    const std::string dir = FreshDir("worker_refuse");
    cost::CostModel cost_model;
    WorkerOptions options;
    options.shard_dir = dir;
    WorkerServer worker(cost_model, options);
    ASSERT_TRUE(worker.Start().ok());

    // Tenant methods belong to autoseg_served.
    json::Value stats;
    stats["method"] = std::string("stats");
    json::Value response = worker.HandleRequestLine(stats.Dump());
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_NE(response.GetString("error", "").find("autoseg_worker"),
              std::string::npos);

    // shard_run must carry an explicit end.
    response = worker.HandleRequestLine(ShardRunRequest("t", 0, -1).Dump());
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_EQ(response.GetString("code", ""), "INVALID_ARGUMENT");

    // Cancelling a shard that is not running is an error, not a no-op.
    response = worker.HandleRequestLine(
        ShardControlRequest("shard_cancel", "ghost", 0, 2).Dump());
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_EQ(response.GetString("code", ""), "INVALID_ARGUMENT");
    worker.Stop();
}

TEST(WorkerServerTest, SingleSlotRejectsConcurrentShards)
{
    const std::string dir = FreshDir("worker_busy");
    cost::CostModel cost_model;
    WorkerOptions options;
    options.shard_dir = dir;
    options.jobs = 1;
    WorkerServer worker(cost_model, options);
    ASSERT_TRUE(worker.Start().ok());

    json::Value first = worker.HandleRequestLine(
        ShardRunRequest("t", 0, 3).Dump());
    ASSERT_TRUE(first.GetBool("ok", false)) << first.GetString("error", "");
    json::Value second = worker.HandleRequestLine(
        ShardRunRequest("t", 0, 3).Dump());
    // The slot may have finished already on a fast machine; busy is the
    // expected answer while it runs.
    if (!second.GetBool("ok", false))
        EXPECT_EQ(second.GetString("code", ""), "UNAVAILABLE");
    worker.Stop();
}

TEST(ServeDaemonTest, TenantDaemonRejectsShardMethods)
{
    cost::CostModel cost_model;
    serve::Server server(cost_model, serve::ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    serve::Client client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<json::Value> response =
        client.Call(ShardControlRequest("shard_poll", "t"));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->GetBool("ok", true));
    EXPECT_NE(response->GetString("error", "").find("autoseg_worker"),
              std::string::npos);
    server.Stop();
}

// ---- The coordinator. ----

TEST(CoordinatorTest, FleetRunMatchesSerialBitwise)
{
    const std::string dir = FreshDir("coord_fleet");
    cost::CostModel cost_model;

    WorkerOptions wopt;
    wopt.shard_dir = dir;
    wopt.jobs = 2;
    wopt.checkpoint_every = 1;
    WorkerServer worker_a(cost_model, wopt);
    WorkerServer worker_b(cost_model, wopt);
    ASSERT_TRUE(worker_a.Start().ok());
    ASSERT_TRUE(worker_b.Start().ok());

    CoordinatorOptions copt;
    copt.worker_ports = {worker_a.port(), worker_b.port()};
    copt.shard_dir = dir;
    copt.shard_pairs = 1;
    copt.heartbeat_ms = 20;
    copt.lease_ms = 60000;
    copt.jobs = 2;
    copt.checkpoint_every = 1;
    Coordinator coordinator(cost_model, copt);

    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    StatusOr<autoseg::CoDesignResult> distributed =
        coordinator.RunUnit(kModel, platform, goal, TinySearch());
    ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

    const autoseg::Session serial(cost_model,
                                  autoseg::SessionOptions{2, true});
    ExpectByteIdentical(
        *distributed,
        serial.Run(ConvTowerWorkload(), platform, goal, TinySearch()),
        platform, goal);
    EXPECT_GT(coordinator.telemetry().leases_issued, 0);
    EXPECT_GT(coordinator.telemetry().shards_completed, 0);
    worker_a.Stop();
    worker_b.Stop();
}

TEST(CoordinatorTest, EmptyFleetDegradesToLocalExecution)
{
    const std::string dir = FreshDir("coord_local");
    cost::CostModel cost_model;
    CoordinatorOptions copt;
    copt.shard_dir = dir;  // no worker_ports at all
    copt.shard_pairs = 2;
    copt.heartbeat_ms = 10;
    copt.jobs = 2;
    Coordinator coordinator(cost_model, copt);

    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    StatusOr<autoseg::CoDesignResult> result =
        coordinator.RunUnit(kModel, platform, goal, TinySearch());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(coordinator.telemetry().local_runs, 0);

    const autoseg::Session serial(cost_model,
                                  autoseg::SessionOptions{2, true});
    ExpectByteIdentical(
        *result, serial.Run(ConvTowerWorkload(), platform, goal, TinySearch()),
        platform, goal);
}

TEST(CoordinatorTest, DeadRosterFallsBackAndStaysCorrect)
{
    // A port with no listener: every dispatch fails, the worker is
    // marked lost, and the shards all run locally.
    const std::string dir = FreshDir("coord_dead");
    cost::CostModel cost_model;
    CoordinatorOptions copt;
    copt.worker_ports = {1};  // connect refused (privileged, unbound)
    copt.shard_dir = dir;
    copt.shard_pairs = 2;
    copt.heartbeat_ms = 10;
    copt.max_attempts = 2;
    copt.backoff.base_ms = 1;
    copt.backoff.max_ms = 5;
    copt.jobs = 2;
    Coordinator coordinator(cost_model, copt);

    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    StatusOr<autoseg::CoDesignResult> result =
        coordinator.RunUnit(kModel, platform, goal, TinySearch());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(coordinator.telemetry().workers_lost, 0);
    EXPECT_GT(coordinator.telemetry().local_runs, 0);

    const autoseg::Session serial(cost_model,
                                  autoseg::SessionOptions{2, true});
    ExpectByteIdentical(
        *result, serial.Run(ConvTowerWorkload(), platform, goal, TinySearch()),
        platform, goal);
}

TEST(CoordinatorTest, RejectsBudgetedOrPathedSearches)
{
    const std::string dir = FreshDir("coord_reject");
    cost::CostModel cost_model;
    CoordinatorOptions copt;
    copt.shard_dir = dir;
    Coordinator coordinator(cost_model, copt);
    const hw::Platform platform = hw::EyerissBudget();

    autoseg::CoDesignOptions budgeted = TinySearch();
    budgeted.max_pairs = 2;
    EXPECT_EQ(coordinator
                  .RunUnit(kModel, platform, alloc::DesignGoal::kLatency,
                           budgeted)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    autoseg::CoDesignOptions pathed = TinySearch();
    pathed.checkpoint_path = dir + "/mine.json";
    EXPECT_EQ(coordinator
                  .RunUnit(kModel, platform, alloc::DesignGoal::kLatency,
                           pathed)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    EXPECT_EQ(coordinator
                  .RunUnit("no_such_model", platform,
                           alloc::DesignGoal::kLatency, TinySearch())
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
}

#ifdef SPA_FAULT_INJECTION
TEST(CoordinatorTest, DispatchFaultsAreRetriedNotFatal)
{
    const std::string dir = FreshDir("coord_fault");
    cost::CostModel cost_model;
    WorkerOptions wopt;
    wopt.shard_dir = dir;
    wopt.jobs = 2;
    wopt.checkpoint_every = 1;
    WorkerServer worker(cost_model, wopt);
    ASSERT_TRUE(worker.Start().ok());

    CoordinatorOptions copt;
    copt.worker_ports = {worker.port()};
    copt.shard_dir = dir;
    copt.shard_pairs = 1;
    copt.heartbeat_ms = 10;
    copt.backoff.base_ms = 1;
    copt.backoff.max_ms = 5;
    copt.jobs = 2;
    Coordinator coordinator(cost_model, copt);

    fault::SetEnabled(true);
    fault::Arm("dist.dispatch", /*seed=*/3, /*period=*/2);
    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    StatusOr<autoseg::CoDesignResult> result =
        coordinator.RunUnit(kModel, platform, goal, TinySearch());
    const int64_t dispatch_visits = fault::Visits("dist.dispatch");
    fault::DisarmAll();
    fault::SetEnabled(false);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(dispatch_visits, 0);

    const autoseg::Session serial(cost_model,
                                  autoseg::SessionOptions{2, true});
    ExpectByteIdentical(
        *result, serial.Run(ConvTowerWorkload(), platform, goal, TinySearch()),
        platform, goal);
    worker.Stop();
}

TEST(CoordinatorTest, MergeFaultSurfacesAsMergeRejection)
{
    const std::string dir = FreshDir("coord_merge_fault");
    cost::CostModel cost_model;
    CoordinatorOptions copt;
    copt.shard_dir = dir;  // local-only: only dist.merge is armed
    copt.shard_pairs = 2;
    copt.heartbeat_ms = 10;
    copt.jobs = 2;
    Coordinator coordinator(cost_model, copt);

    fault::SetEnabled(true);
    fault::Arm("dist.merge", /*seed=*/5, /*period=*/1);
    StatusOr<autoseg::CoDesignResult> result = coordinator.RunUnit(
        kModel, hw::EyerissBudget(), alloc::DesignGoal::kLatency,
        TinySearch());
    fault::DisarmAll();
    fault::SetEnabled(false);
    EXPECT_FALSE(result.ok());
    EXPECT_GT(coordinator.telemetry().merge_rejections, 0);
}
#endif  // SPA_FAULT_INJECTION

TEST(CoordinatorTest, DistCountersReachThePrometheusExposition)
{
    // One local-only unit exercises the dist counters; the process-wide
    // registry must then export them (ctest runs each case in its own
    // process, so the counters cannot be inherited from other tests).
    const std::string dir = FreshDir("coord_metrics");
    cost::CostModel cost_model;
    CoordinatorOptions copt;
    copt.shard_dir = dir;
    copt.shard_pairs = 2;
    copt.heartbeat_ms = 10;
    copt.jobs = 2;
    Coordinator coordinator(cost_model, copt);
    ASSERT_TRUE(coordinator
                    .RunUnit(kModel, hw::EyerissBudget(),
                             alloc::DesignGoal::kLatency, TinySearch())
                    .ok());
    const std::string exposition = obs::Registry::Default().ToPrometheus();
    EXPECT_NE(exposition.find("spa_dist_leases_issued"), std::string::npos);
    EXPECT_NE(exposition.find("spa_dist_shards_completed"),
              std::string::npos);
    EXPECT_NE(exposition.find("spa_dist_workers_live"), std::string::npos);
}

// ---- Chaos: SIGKILL real worker processes mid-sweep. ----

struct WorkerProc
{
    pid_t pid = -1;
    int port = 0;
};

std::string
WorkerBinary()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    const std::filesystem::path tools =
        std::filesystem::path(buf).parent_path().parent_path() / "tools" /
        "autoseg_worker";
    std::error_code ec;
    if (std::filesystem::exists(tools, ec))
        return tools.string();
    return "";
}

/** fork/execs one autoseg_worker and parses its PORT line. */
WorkerProc
SpawnWorker(const std::string& binary, const std::string& dir, int port)
{
    WorkerProc proc;
    int fds[2];
    if (::pipe(fds) != 0)
        return proc;
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        const std::string port_arg = std::to_string(port);
        ::execl(binary.c_str(), "autoseg_worker", "--shard-dir", dir.c_str(),
                "--port", port_arg.c_str(), "--checkpoint-every", "1",
                "--jobs", "2", "--quiet", static_cast<char*>(nullptr));
        _exit(127);
    }
    ::close(fds[1]);
    std::string line;
    char c;
    while (::read(fds[0], &c, 1) == 1 && c != '\n')
        line.push_back(c);
    ::close(fds[0]);
    if (line.rfind("PORT ", 0) == 0) {
        proc.pid = pid;
        proc.port = std::stoi(line.substr(5));
    } else if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
    }
    return proc;
}

void
KillWorker(WorkerProc& proc)
{
    if (proc.pid > 0) {
        ::kill(proc.pid, SIGKILL);
        ::waitpid(proc.pid, nullptr, 0);
        proc.pid = -1;
    }
}

TEST(ChaosTest, EveryWorkerKilledMidSweepStillBitwiseIdentical)
{
    const std::string binary = WorkerBinary();
    if (binary.empty())
        GTEST_SKIP() << "autoseg_worker binary not found next to the tests";
    const std::string dir = FreshDir("chaos");
    cost::CostModel cost_model;
    const hw::Platform platform = hw::EyerissBudget();
    const alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    const autoseg::CoDesignOptions search = ChaosSearch();

    // The uninterrupted single-process reference.
    const autoseg::Session serial(cost_model,
                                  autoseg::SessionOptions{2, true});
    const autoseg::CoDesignResult reference =
        serial.Run(ConvTowerWorkload(), platform, goal, search);

    std::vector<WorkerProc> fleet;
    for (int i = 0; i < 4; ++i) {
        WorkerProc proc = SpawnWorker(binary, dir, /*port=*/0);
        ASSERT_GT(proc.pid, 0) << "worker " << i << " failed to spawn";
        fleet.push_back(proc);
    }

    CoordinatorOptions copt;
    for (const WorkerProc& proc : fleet)
        copt.worker_ports.push_back(proc.port);
    copt.shard_dir = dir;
    copt.shard_pairs = 2;
    copt.heartbeat_ms = 20;
    copt.lease_ms = 60000;  // death is detected by RPC failure, not lease
    copt.max_attempts = 8;
    copt.backoff.base_ms = 5;
    copt.backoff.max_ms = 50;
    copt.jobs = 2;
    copt.checkpoint_every = 1;
    Coordinator coordinator(cost_model, copt);

    StatusOr<autoseg::CoDesignResult> distributed;
    std::thread sweep([&] {
        distributed = coordinator.RunUnit(kModel, platform, goal, search);
    });

    // Kill every worker once, staggered so each dies mid-lease; revive
    // the first two on their old ports so the fleet partially recovers.
    for (size_t i = 0; i < fleet.size(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        KillWorker(fleet[i]);
        if (i < 2) {
            WorkerProc revived = SpawnWorker(binary, dir, fleet[i].port);
            if (revived.pid > 0)
                fleet[i] = revived;
        }
    }
    sweep.join();
    for (WorkerProc& proc : fleet)
        KillWorker(proc);

    ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
    ExpectByteIdentical(*distributed, reference, platform, goal);
    // The sweep must have noticed at least one death (all four workers
    // were killed while shards were in flight).
    EXPECT_GT(coordinator.telemetry().workers_lost, 0);
}

}  // namespace
}  // namespace dist
}  // namespace spa
