// Regression tests for the parallel co-design engine: Engine::Run with
// jobs=1 (strictly serial) and jobs=8 must produce identical
// CoDesignResults — same winning design, same metrics, and the same
// explored-candidate trace in the same enumeration order.

#include <gtest/gtest.h>

#include "autoseg/autoseg.h"
#include "nn/models.h"
#include "obs/trace.h"

namespace spa {
namespace autoseg {
namespace {

CoDesignOptions
FastOptions(int jobs)
{
    CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    options.jobs = jobs;
    return options;
}

void
ExpectIdenticalResults(const CoDesignResult& a, const CoDesignResult& b,
                       alloc::DesignGoal goal)
{
    ASSERT_EQ(a.ok, b.ok);
    if (a.ok) {
        EXPECT_EQ(a.assignment.num_segments, b.assignment.num_segments);
        EXPECT_EQ(a.assignment.num_pus, b.assignment.num_pus);
        EXPECT_EQ(a.assignment.segment_of, b.assignment.segment_of);
        EXPECT_EQ(a.assignment.pu_of, b.assignment.pu_of);
        EXPECT_EQ(a.alloc.latency_seconds, b.alloc.latency_seconds);
        EXPECT_EQ(a.alloc.throughput_fps, b.alloc.throughput_fps);
        EXPECT_EQ(a.alloc.pe_utilization, b.alloc.pe_utilization);
        EXPECT_EQ(a.alloc.config.ToString(), b.alloc.config.ToString());
        EXPECT_EQ(a.metrics.min_ctc, b.metrics.min_ctc);
        EXPECT_EQ(a.metrics.sod, b.metrics.sod);
        EXPECT_EQ(a.GoalValue(goal), b.GoalValue(goal));
    }
    // The explored trace must match entry for entry, in order.
    ASSERT_EQ(a.explored.size(), b.explored.size());
    for (size_t i = 0; i < a.explored.size(); ++i) {
        const CandidateRecord& ra = a.explored[i];
        const CandidateRecord& rb = b.explored[i];
        EXPECT_EQ(ra.num_segments, rb.num_segments) << "entry " << i;
        EXPECT_EQ(ra.num_pus, rb.num_pus) << "entry " << i;
        EXPECT_EQ(ra.feasible, rb.feasible) << "entry " << i;
        EXPECT_EQ(ra.latency_seconds, rb.latency_seconds) << "entry " << i;
        EXPECT_EQ(ra.throughput_fps, rb.throughput_fps) << "entry " << i;
        EXPECT_EQ(ra.min_ctc, rb.min_ctc) << "entry " << i;
        EXPECT_EQ(ra.sod, rb.sod) << "entry " << i;
    }
}

void
CheckModel(nn::Graph graph, const hw::Platform& budget, alloc::DesignGoal goal)
{
    nn::Workload w = nn::ExtractWorkload(std::move(graph));
    cost::CostModel cost_model;
    Engine serial(cost_model, FastOptions(1));
    Engine parallel(cost_model, FastOptions(8));
    const auto a = serial.Run(w, budget, goal);
    const auto b = parallel.Run(w, budget, goal);
    ASSERT_TRUE(a.ok);
    ExpectIdenticalResults(a, b, goal);
}

TEST(EngineDeterminismTest, SqueezeNetLatency)
{
    CheckModel(nn::BuildSqueezeNet(), hw::EyerissBudget(),
               alloc::DesignGoal::kLatency);
}

TEST(EngineDeterminismTest, AlexNetLatency)
{
    CheckModel(nn::BuildAlexNet(), hw::NvdlaSmallBudget(),
               alloc::DesignGoal::kLatency);
}

TEST(EngineDeterminismTest, SqueezeNetThroughput)
{
    CheckModel(nn::BuildSqueezeNet(), hw::NvdlaSmallBudget(),
               alloc::DesignGoal::kThroughput);
}

TEST(EngineDeterminismTest, RepeatedRunsAreStable)
{
    // Same engine, same inputs, run twice: the segmentation cache is
    // warm the second time, which must not change the result.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions(8));
    const auto first = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    const auto second =
        engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_TRUE(first.ok);
    ExpectIdenticalResults(first, second, alloc::DesignGoal::kLatency);
}

TEST(TelemetryDeterminismTest, TracingDoesNotChangeResults)
{
    // Trace-invariance contract: running with the trace session live
    // must produce bitwise-identical CoDesignResults to running with
    // telemetry off, at jobs=1 and jobs=8 alike.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    const hw::Platform budget = hw::EyerissBudget();
    for (int jobs : {1, 8}) {
        cost::CostModel cost_model;
        Engine engine(cost_model, FastOptions(jobs));
        obs::TraceSession::Get().Stop();  // SPA_TELEMETRY may have auto-started
        ASSERT_FALSE(obs::TraceSession::Get().enabled());
        const auto off = engine.Run(w, budget, alloc::DesignGoal::kLatency);

        obs::TraceSession::Get().Start();
        const auto on = engine.Run(w, budget, alloc::DesignGoal::kLatency);
        obs::TraceSession::Get().Stop();

        ASSERT_TRUE(off.ok);
        ExpectIdenticalResults(off, on, alloc::DesignGoal::kLatency);
        EXPECT_GT(obs::TraceSession::Get().NumEvents(), 0u);
    }
}

TEST(EngineDeterminismTest, HardwareDefaultJobsMatchesSerial)
{
    // jobs=0 (hardware concurrency) must agree with jobs=1 too.
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel cost_model;
    Engine serial(cost_model, FastOptions(1));
    Engine hardware(cost_model, FastOptions(0));
    const auto a = serial.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    const auto b = hardware.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_TRUE(a.ok);
    ExpectIdenticalResults(a, b, alloc::DesignGoal::kLatency);
}

}  // namespace
}  // namespace autoseg
}  // namespace spa
