// Tests for the whole-model SPA schedule: segment sequencing,
// reconfiguration bubbles, memory-bound stretching, and agreement with
// the allocator's analytical latency.

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "nn/models.h"
#include "pipe/schedule.h"
#include "seg/segmenter.h"

namespace spa {
namespace pipe {
namespace {

struct Design
{
    nn::Workload w;
    seg::Assignment a;
    alloc::AllocationResult alloc;
};

Design
MakeDesign(const char* model, int segments, int pus, const hw::Platform& budget)
{
    cost::CostModel cost_model;
    Design d{nn::ExtractWorkload(nn::BuildModel(model)), {}, {}};
    seg::HeuristicSegmenter segmenter;
    EXPECT_TRUE(segmenter.Solve(d.w, segments, pus, d.a));
    alloc::Allocator allocator(cost_model);
    d.alloc = allocator.Allocate(d.w, d.a, budget, alloc::DesignGoal::kLatency);
    EXPECT_TRUE(d.alloc.ok);
    return d;
}

std::vector<std::vector<hw::Dataflow>>
DataflowsOf(const alloc::AllocationResult& alloc_result)
{
    std::vector<std::vector<hw::Dataflow>> df;
    for (const auto& seg_eval : alloc_result.segments)
        df.push_back(seg_eval.dataflow);
    return df;
}

TEST(SpaSchedulerTest, SlotsCoverEverySegment)
{
    Design d = MakeDesign("squeezenet", 4, 3, hw::EyerissBudget());
    cost::CostModel cost_model;
    SpaScheduler scheduler(cost_model);
    auto schedule = scheduler.RunModel(d.w, d.a, d.alloc.config,
                                       DataflowsOf(d.alloc));
    EXPECT_EQ(schedule.slots.size(), 4u);
    EXPECT_GT(schedule.total_cycles, 0);
}

TEST(SpaSchedulerTest, ReconfigurationBubblesCounted)
{
    Design d = MakeDesign("squeezenet", 4, 3, hw::EyerissBudget());
    cost::CostModel cost_model;
    SpaScheduler fast(cost_model, /*reconfig_cycles=*/0);
    SpaScheduler slow(cost_model, /*reconfig_cycles=*/1000);
    auto df = DataflowsOf(d.alloc);
    auto a = fast.RunModel(d.w, d.a, d.alloc.config, df);
    auto b = slow.RunModel(d.w, d.a, d.alloc.config, df);
    EXPECT_EQ(a.reconfig_cycles, 0);
    EXPECT_EQ(b.reconfig_cycles, 3 * 1000);  // S-1 switches
    EXPECT_EQ(b.total_cycles - a.total_cycles, 3 * 1000);
}

TEST(SpaSchedulerTest, TotalIsSumOfSlotsAndBubbles)
{
    Design d = MakeDesign("mobilenet_v1", 6, 2, hw::NvdlaSmallBudget());
    cost::CostModel cost_model;
    SpaScheduler scheduler(cost_model, 64);
    auto schedule = scheduler.RunModel(d.w, d.a, d.alloc.config,
                                       DataflowsOf(d.alloc));
    int64_t sum = schedule.reconfig_cycles;
    for (const auto& slot : schedule.slots)
        sum += slot.slot_cycles;
    EXPECT_EQ(schedule.total_cycles, sum);
}

TEST(SpaSchedulerTest, MemoryBoundSegmentsStretched)
{
    // EdgeTPU: 0.5 GB/s starves the pipeline; slots go memory bound.
    Design d = MakeDesign("squeezenet", 4, 2, hw::EdgeTpuBudget());
    cost::CostModel cost_model;
    SpaScheduler scheduler(cost_model);
    auto schedule = scheduler.RunModel(d.w, d.a, d.alloc.config,
                                       DataflowsOf(d.alloc));
    int memory_bound = 0;
    for (const auto& slot : schedule.slots) {
        EXPECT_GE(slot.slot_cycles, slot.sim.total_cycles);
        EXPECT_GE(slot.slot_cycles, slot.memory_cycles);
        memory_bound += slot.memory_bound;
    }
    EXPECT_GT(memory_bound, 0);
}

TEST(SpaSchedulerTest, AgreesWithAnalyticalLatency)
{
    // The discrete-event schedule should land within ~35% of the
    // allocator's closed-form estimate (fill-factor approximation).
    Design d = MakeDesign("squeezenet", 4, 3, hw::NvdlaLargeBudget());
    cost::CostModel cost_model;
    SpaScheduler scheduler(cost_model);
    auto schedule = scheduler.RunModel(d.w, d.a, d.alloc.config,
                                       DataflowsOf(d.alloc));
    const double simulated = schedule.Seconds(d.alloc.config.freq_ghz);
    const double analytic = d.alloc.latency_seconds;
    EXPECT_GT(simulated, 0.6 * analytic);
    EXPECT_LT(simulated, 1.6 * analytic);
}

TEST(SpaSchedulerTest, SecondsScalesWithFrequency)
{
    Design d = MakeDesign("squeezenet", 4, 2, hw::EyerissBudget());
    cost::CostModel cost_model;
    SpaScheduler scheduler(cost_model);
    auto schedule = scheduler.RunModel(d.w, d.a, d.alloc.config,
                                       DataflowsOf(d.alloc));
    EXPECT_NEAR(schedule.Seconds(0.2), 2.0 * schedule.Seconds(0.4), 1e-12);
}

}  // namespace
}  // namespace pipe
}  // namespace spa
