// Tests for the piece-based segment simulator and the functional
// segment executor (systolic PUs + Benes fabric end to end).

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "nn/models.h"
#include "pipe/sim.h"
#include "pu/reference.h"
#include "seg/segmenter.h"

namespace spa {
namespace pipe {
namespace {

struct Fixture
{
    nn::Graph graph;
    nn::Workload w;
    seg::Assignment a;
    hw::SpaConfig config;
    std::vector<hw::Dataflow> dataflow;
};

/** Small two-PU, one-segment chain for functional checks. */
Fixture
SmallChain()
{
    nn::Graph g("chain");
    nn::LayerId x = g.AddInput("input", {4, 12, 12});
    x = g.AddConv("c0", x, 8, 3, 1, 1);
    x = g.AddConv("c1", x, 8, 3, 1, 1);
    x = g.AddConv("c2", x, 8, 3, 1, 1);
    g.AddConv("c3", x, 8, 3, 1, 1);
    Fixture f{std::move(g), {}, {}, {}, {}};
    f.w = nn::ExtractWorkload(f.graph);
    f.a.num_segments = 1;
    f.a.num_pus = 2;
    f.a.segment_of = {0, 0, 0, 0};
    f.a.pu_of = {0, 0, 1, 1};
    f.config.pus = {hw::PuConfig{4, 4, 4096, 4096}, hw::PuConfig{4, 4, 4096, 4096}};
    f.dataflow = {hw::Dataflow::kWeightStationary, hw::Dataflow::kOutputStationary};
    return f;
}

TEST(SegmentSimulatorTest, CyclesBoundedByBusyWork)
{
    Fixture f = SmallChain();
    cost::CostModel cost_model;
    SegmentSimulator sim(cost_model);
    auto result = sim.Simulate(f.w, f.a, 0, f.config, f.dataflow);
    // Total >= the busiest PU; <= serial sum of all work.
    int64_t serial = 0;
    int64_t busiest = 0;
    for (int n = 0; n < 2; ++n) {
        serial += result.pu_busy_cycles[static_cast<size_t>(n)];
        busiest = std::max(busiest, result.pu_busy_cycles[static_cast<size_t>(n)]);
    }
    EXPECT_GE(result.total_cycles, busiest);
    EXPECT_LE(result.total_cycles, serial);
    EXPECT_EQ(result.pieces_executed, 4 * 12);  // 4 layers x hout pieces
}

TEST(SegmentSimulatorTest, PipeliningBeatsSerialExecution)
{
    Fixture f = SmallChain();
    cost::CostModel cost_model;
    SegmentSimulator sim(cost_model);
    auto result = sim.Simulate(f.w, f.a, 0, f.config, f.dataflow);
    int64_t serial = 0;
    for (int n = 0; n < 2; ++n)
        serial += result.pu_busy_cycles[static_cast<size_t>(n)];
    // Overlap must buy us something real.
    EXPECT_LT(result.total_cycles, static_cast<int64_t>(serial * 0.85));
    EXPECT_GT(result.PipelineEfficiency(), 0.5);
}

TEST(SegmentSimulatorTest, StallAccountingConsistent)
{
    Fixture f = SmallChain();
    cost::CostModel cost_model;
    SegmentSimulator sim(cost_model);
    auto result = sim.Simulate(f.w, f.a, 0, f.config, f.dataflow);
    for (int n = 0; n < 2; ++n) {
        EXPECT_EQ(result.pu_busy_cycles[static_cast<size_t>(n)] +
                      result.pu_stall_cycles[static_cast<size_t>(n)],
                  result.total_cycles);
    }
}

TEST(SegmentSimulatorTest, MatchesAllocatorFillModelShape)
{
    // The analytic latency (max PU busy x fill factor) should be within
    // ~25% of the simulated cycles for a balanced chain.
    Fixture f = SmallChain();
    cost::CostModel cost_model;
    SegmentSimulator sim(cost_model);
    auto simulated = sim.Simulate(f.w, f.a, 0, f.config, f.dataflow);
    int64_t max_busy = 0;
    for (int n = 0; n < 2; ++n)
        max_busy = std::max(max_busy, simulated.pu_busy_cycles[static_cast<size_t>(n)]);
    EXPECT_LT(static_cast<double>(simulated.total_cycles),
              1.45 * static_cast<double>(max_busy));
}

TEST(FunctionalTest, SegmentMatchesReferenceExecution)
{
    Fixture f = SmallChain();
    noc::BenesNetwork fabric(2);
    auto result = RunSegmentFunctional(f.graph, f.w, f.a, 0, f.config, f.dataflow,
                                       fabric, 42);
    ASSERT_TRUE(result.ok) << result.error;

    // Recompute everything with the reference path (run the same
    // functional executor with a config whose PUs are never used --
    // trick: a different segment id so every layer takes the
    // ReferenceConv path) and compare.
    auto reference = RunSegmentFunctional(f.graph, f.w, f.a, /*s=*/1, f.config,
                                          f.dataflow, fabric, 42);
    ASSERT_TRUE(reference.ok) << reference.error;
    for (size_t l = 0; l < f.w.layers.size(); ++l) {
        // Outputs recorded only for conv layers; both paths fill all.
        EXPECT_TRUE(result.outputs[l] == reference.outputs[l])
            << "layer " << f.w.layers[l].name;
    }
}

TEST(FunctionalTest, BranchyGraphWithConcat)
{
    nn::Graph g("branchy");
    nn::LayerId in = g.AddInput("input", {4, 10, 10});
    nn::LayerId s0 = g.AddConv("squeeze", in, 4, 1, 1, 0);
    nn::LayerId e1 = g.AddConv("e1", s0, 4, 1, 1, 0);
    nn::LayerId e3 = g.AddConv("e3", s0, 4, 3, 1, 1);
    nn::LayerId cat = g.AddConcat("cat", {e1, e3});
    g.AddConv("post", cat, 4, 3, 1, 1);
    nn::Workload w = nn::ExtractWorkload(g);

    seg::Assignment a;
    a.num_segments = 1;
    a.num_pus = 3;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 1, 1, 2};
    ASSERT_EQ(seg::CheckConstraints(w, a), "");

    hw::SpaConfig config;
    config.pus = {hw::PuConfig{4, 4, 2048, 2048}, hw::PuConfig{4, 4, 2048, 2048},
                  hw::PuConfig{4, 4, 2048, 2048}};
    std::vector<hw::Dataflow> dataflow(3, hw::Dataflow::kWeightStationary);
    noc::BenesNetwork fabric(3);
    auto result = RunSegmentFunctional(g, w, a, 0, config, dataflow, fabric, 9);
    ASSERT_TRUE(result.ok) << result.error;
    auto reference = RunSegmentFunctional(g, w, a, 1, config, dataflow, fabric, 9);
    for (size_t l = 0; l < w.layers.size(); ++l)
        EXPECT_TRUE(result.outputs[l] == reference.outputs[l]);
}

TEST(FunctionalTest, CaseStudyTowerSegmentRuns)
{
    // One real segment of the AlexNet conv tower (downscaled input for
    // test speed is not possible -- use the tower as-is but only check
    // segment 0 which holds the early convs on a tiny config).
    nn::Graph g("mini_tower");
    nn::LayerId in = g.AddInput("input", {3, 32, 32});
    nn::LayerId a1 = g.AddConv("c1a", in, 8, 5, 2, 0);
    nn::LayerId b1 = g.AddConv("c1b", in, 8, 5, 2, 0);
    nn::LayerId a2 = g.AddConv("c2a", a1, 8, 3, 1, 1);
    nn::LayerId b2 = g.AddConv("c2b", b1, 8, 3, 1, 1);
    g.AddConcat("out", {a2, b2});
    nn::Workload w = nn::ExtractWorkload(g);

    seg::Assignment a;
    a.num_segments = 1;
    a.num_pus = 4;
    a.segment_of = {0, 0, 0, 0};
    a.pu_of = {0, 1, 2, 3};
    ASSERT_EQ(seg::CheckConstraints(w, a), "");

    hw::SpaConfig config;
    config.pus.assign(4, hw::PuConfig{4, 4, 4096, 4096});
    std::vector<hw::Dataflow> dataflow(4, hw::Dataflow::kOutputStationary);
    noc::BenesNetwork fabric(4);
    auto result = RunSegmentFunctional(g, w, a, 0, config, dataflow, fabric, 5);
    ASSERT_TRUE(result.ok) << result.error;
    auto reference = RunSegmentFunctional(g, w, a, 1, config, dataflow, fabric, 5);
    for (size_t l = 0; l < w.layers.size(); ++l)
        EXPECT_TRUE(result.outputs[l] == reference.outputs[l]);
}

TEST(FunctionalTest, UnroutableFabricReported)
{
    // Two producers forced onto the same fabric port conflict is not
    // constructible via SegmentComms (src = PU), so instead check the
    // error path with an artificial 2-port fabric and 3 PUs.
    Fixture f = SmallChain();
    f.a.num_pus = 2;
    noc::BenesNetwork fabric(2);
    auto result = RunSegmentFunctional(f.graph, f.w, f.a, 0, f.config, f.dataflow,
                                       fabric, 1);
    EXPECT_TRUE(result.ok);  // 0 -> 1 routes fine even on 2 ports
}

}  // namespace
}  // namespace pipe
}  // namespace spa
