// Tests for the Eq. 1 circular activation buffer.

#include <gtest/gtest.h>

#include "pu/actbuf.h"

namespace spa {
namespace pu {
namespace {

TEST(ActBufTest, OffsetMatchesEquationOne)
{
    // offset = floor(c/Rn) + w*ceil(Ci/Rn) + (h % (K+S)) * Wi * ceil(Ci/Rn)
    const int64_t rn = 4, ci = 10, wi = 7, k = 3, s = 2;
    ActivationBuffer buf(rn, ci, wi, k, s);
    const int64_t wpc = (ci + rn - 1) / rn;  // ceil(10/4) = 3
    for (int64_t c = 0; c < ci; ++c) {
        for (int64_t w = 0; w < wi; ++w) {
            for (int64_t h = 0; h < 12; ++h) {
                EXPECT_EQ(buf.Offset(c, w, h),
                          c / rn + w * wpc + (h % (k + s)) * wi * wpc);
            }
        }
    }
}

TEST(ActBufTest, ActiveRowWindowIsKPlusS)
{
    ActivationBuffer buf(2, 4, 5, 3, 2);
    EXPECT_EQ(buf.ActiveRows(), 5);
}

TEST(ActBufTest, CapacityCoversActiveWindow)
{
    const int64_t rn = 4, ci = 10, wi = 7, k = 3, s = 1;
    ActivationBuffer buf(rn, ci, wi, k, s);
    // (K+S) rows x Wi cols x ceil(Ci/Rn) words x Rn bytes.
    EXPECT_EQ(buf.CapacityBytes(), (k + s) * wi * 3 * rn);
}

TEST(ActBufTest, ReadBackWithinWindow)
{
    ActivationBuffer buf(4, 8, 6, 3, 1);
    for (int64_t h = 0; h < buf.ActiveRows(); ++h)
        for (int64_t c = 0; c < 8; ++c)
            for (int64_t w = 0; w < 6; ++w)
                buf.Write(c, w, h, static_cast<int8_t>((h * 48 + c * 6 + w) % 100));
    for (int64_t h = 0; h < buf.ActiveRows(); ++h)
        for (int64_t c = 0; c < 8; ++c)
            for (int64_t w = 0; w < 6; ++w)
                EXPECT_EQ(buf.Read(c, w, h),
                          static_cast<int8_t>((h * 48 + c * 6 + w) % 100));
}

TEST(ActBufTest, CircularOverwriteAliasesRows)
{
    // Writing row h + (K+S) lands on the same storage as row h: the
    // hardware streams rows in and old rows expire.
    ActivationBuffer buf(2, 4, 4, 3, 2);
    const int64_t window = buf.ActiveRows();
    buf.Write(1, 2, 0, 42);
    EXPECT_EQ(buf.Read(1, 2, 0), 42);
    buf.Write(1, 2, window, 77);  // aliases row 0
    EXPECT_EQ(buf.Read(1, 2, 0), 77);
    EXPECT_EQ(buf.Read(1, 2, window), 77);
}

TEST(ActBufTest, DistinctElementsWithinWindowDontCollide)
{
    // Within one active window, every (c, w, h) maps to a distinct byte.
    const int64_t rn = 4, ci = 6, wi = 5, k = 3, s = 1;
    ActivationBuffer buf(rn, ci, wi, k, s);
    std::vector<int> seen(static_cast<size_t>(buf.CapacityBytes()), 0);
    for (int64_t h = 0; h < buf.ActiveRows(); ++h)
        for (int64_t c = 0; c < ci; ++c)
            for (int64_t w = 0; w < wi; ++w)
                seen[static_cast<size_t>(buf.Offset(c, w, h) * rn + c % rn)]++;
    for (int v : seen)
        EXPECT_LE(v, 1);
}

TEST(ActBufDeathTest, OutOfRangePanics)
{
    ActivationBuffer buf(2, 4, 4, 3, 1);
    EXPECT_DEATH(buf.Offset(4, 0, 0), "channel out of range");
    EXPECT_DEATH(buf.Offset(0, 4, 0), "column out of range");
}

}  // namespace
}  // namespace pu
}  // namespace spa
