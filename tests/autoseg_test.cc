// Integration tests for the AutoSeg co-design engine: end-to-end runs,
// the paper's headline comparisons in miniature, energy accounting and
// the generality (remap) mode.

#include <gtest/gtest.h>

#include "autoseg/autoseg.h"
#include "autoseg/energy.h"
#include "baselines/models.h"
#include "nn/models.h"

namespace spa {
namespace autoseg {
namespace {

CoDesignOptions
FastOptions()
{
    CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    return options;
}

TEST(EngineTest, SqueezeNetOnEyeriss)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    auto result = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.alloc.latency_seconds, 0.0);
    EXPECT_GE(result.assignment.num_segments, 1);
    EXPECT_FALSE(result.explored.empty());
}

TEST(EngineTest, SpaBeatsNoPipelineOnSqueezeNet)
{
    // Fig. 12's core claim, in miniature: the AutoSeg SPA design beats
    // the unified-PU baseline at the same budget.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    const hw::Platform budget = hw::NvdlaSmallBudget();
    auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency);
    ASSERT_TRUE(spa.ok);
    baselines::NoPipelineModel no_pipe(cost_model);
    auto base = no_pipe.Evaluate(w, budget);
    ASSERT_TRUE(base.ok);
    EXPECT_LT(spa.alloc.latency_seconds, base.latency_seconds);
}

TEST(EngineTest, SpaBeatsNoPipelineOnMobileNet)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildMobileNetV1());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    const hw::Platform budget = hw::NvdlaSmallBudget();
    auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency);
    ASSERT_TRUE(spa.ok);
    baselines::NoPipelineModel no_pipe(cost_model);
    auto base = no_pipe.Evaluate(w, budget);
    // MobileNet: intermediate fmaps dominate -> big win expected.
    EXPECT_LT(spa.alloc.latency_seconds, base.latency_seconds / 1.5);
}

TEST(EngineTest, SegmentAccessBelowLayerwiseAccess)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    auto result = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    int64_t seg_access = 0;
    for (int s = 0; s < result.assignment.num_segments; ++s)
        seg_access += seg::SegmentAccessBytes(w, result.assignment, s);
    int64_t layerwise = 0;
    for (const auto& l : w.layers)
        layerwise += l.AccessBytes();
    EXPECT_LT(seg_access, layerwise);
}

TEST(EnergyTest, BreakdownPositiveAndOthersSmall)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    auto result = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_TRUE(result.ok);
    auto energy = EvaluateSpaEnergy(cost_model, w, result.assignment, result.alloc);
    EXPECT_GT(energy.dram_pj, 0.0);
    EXPECT_GT(energy.buffer_pj, 0.0);
    EXPECT_GT(energy.mac_pj, 0.0);
    EXPECT_GT(energy.other_pj, 0.0);
    // The paper reports interconnect + muxes < 3% of total energy.
    EXPECT_LT(energy.other_pj / energy.TotalPj(), 0.05);
}

TEST(EnergyTest, SpaUsesLessDramEnergyThanNoPipeline)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildMobileNetV1());
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    const hw::Platform budget = hw::EyerissBudget();
    auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency);
    ASSERT_TRUE(spa.ok);
    auto spa_energy = EvaluateSpaEnergy(cost_model, w, spa.assignment, spa.alloc);
    baselines::NoPipelineModel no_pipe(cost_model);
    auto base = no_pipe.Evaluate(w, budget);
    EXPECT_LT(spa_energy.dram_pj, base.energy.dram_pj);
}

TEST(RemapTest, OtherModelRunsOnDedicatedDesign)
{
    // Sec. VI-F: build for SqueezeNet, remap MobileNetV1 onto it.
    cost::CostModel cost_model;
    Engine engine(cost_model, FastOptions());
    nn::Workload squeeze = nn::ExtractWorkload(nn::BuildSqueezeNet());
    auto dedicated = engine.Run(squeeze, hw::EyerissBudget(),
                                alloc::DesignGoal::kLatency);
    ASSERT_TRUE(dedicated.ok);

    // Pruned fabric of the dedicated design.
    noc::BenesNetwork fabric(std::max(2, dedicated.assignment.num_pus));
    std::vector<noc::BenesConfig> configs;
    for (int s = 0; s < dedicated.assignment.num_segments; ++s) {
        std::map<int, std::vector<int>> fanout;
        for (const auto& comm : seg::SegmentComms(squeeze, dedicated.assignment, s))
            fanout[comm.src_pu].push_back(comm.dst_pu);
        std::vector<noc::RouteRequest> requests;
        for (auto& [src, dsts] : fanout)
            requests.push_back({src, dsts});
        noc::BenesConfig cfg;
        if (!requests.empty() && fabric.Route(requests, cfg))
            configs.push_back(cfg);
    }
    auto prune = fabric.Prune(configs);

    nn::Workload mobilenet = nn::ExtractWorkload(nn::BuildMobileNetV1());
    auto remapped = engine.Remap(mobilenet, dedicated.alloc.config, fabric,
                                 prune.link_mask, alloc::DesignGoal::kLatency);
    ASSERT_TRUE(remapped.ok);

    // Non-dedicated performance is worse than (or equal to) dedicated,
    // but stays in the same league as the no-pipeline baseline (the
    // Fig. 17 shape; our layerwise baseline is dataflow-hybrid and
    // full-budget, i.e. stronger than the paper's, so "close to" rather
    // than "strictly above" is the reproducible property here).
    auto mobile_dedicated = engine.Run(mobilenet, hw::EyerissBudget(),
                                       alloc::DesignGoal::kLatency);
    ASSERT_TRUE(mobile_dedicated.ok);
    EXPECT_GE(remapped.alloc.latency_seconds,
              mobile_dedicated.alloc.latency_seconds * 0.95);
    baselines::NoPipelineModel no_pipe(cost_model);
    auto base = no_pipe.Evaluate(mobilenet, hw::EyerissBudget());
    EXPECT_LT(remapped.alloc.latency_seconds, 1.6 * base.latency_seconds);
}

}  // namespace
}  // namespace autoseg
}  // namespace spa
