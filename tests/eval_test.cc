// Tests for the unified evaluation layer: the thread-safe segmentation
// cache, the memoized cost model, and the Evaluator front end.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "autoseg/autoseg.h"
#include "common/threadpool.h"
#include "eval/evaluator.h"
#include "eval/seg_cache.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace spa {
namespace eval {
namespace {

TEST(SegmentationCacheTest, StoreLookupRoundtrip)
{
    SegmentationCache cache;
    std::optional<seg::Assignment> out;
    EXPECT_FALSE(cache.Lookup("net", 2, 3, out));

    seg::Assignment a;
    a.num_segments = 2;
    a.num_pus = 3;
    a.segment_of = {0, 0, 1};
    a.pu_of = {0, 1, 0};
    cache.Store("net", 2, 3, a);
    cache.Store("net", 4, 3, std::nullopt);  // infeasible entry

    ASSERT_TRUE(cache.Lookup("net", 2, 3, out));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->num_segments, 2);
    EXPECT_EQ(out->segment_of, (std::vector<int>{0, 0, 1}));

    ASSERT_TRUE(cache.Lookup("net", 4, 3, out));
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(cache.Size(), 2u);
}

TEST(SegmentationCacheTest, ConcurrentHammerIsConsistent)
{
    // Satellite requirement: hammer Lookup/Store from many threads.
    // Every thread stores its own keys and re-reads everyone's; any
    // entry that is found must carry the value its key implies.
    SegmentationCache cache;
    constexpr int kThreads = 8;
    constexpr int kKeys = 64;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &bad, t] {
            for (int round = 0; round < 50; ++round) {
                for (int k = 0; k < kKeys; ++k) {
                    seg::Assignment a;
                    a.num_segments = k + 1;
                    a.num_pus = t + 1;
                    cache.Store("m" + std::to_string(t), k, 1, a);
                    std::optional<seg::Assignment> out;
                    const int peer = (t + round) % kThreads;
                    if (cache.Lookup("m" + std::to_string(peer), k, 1, out)) {
                        if (!out.has_value() || out->num_segments != k + 1 ||
                            out->num_pus != peer + 1)
                            bad++;
                    }
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(cache.Size(), static_cast<size_t>(kThreads * kKeys));
}

TEST(CostMemoTest, MemoMatchesUncachedExactly)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel plain;
    cost::CostModel memoized;
    memoized.EnableMemo();
    ASSERT_TRUE(memoized.memo_enabled());

    const std::vector<hw::PuConfig> shapes = {{8, 8}, {16, 8}, {12, 24}};
    for (const auto& l : w.layers) {
        for (const auto& pu : shapes) {
            for (hw::Dataflow df : {hw::Dataflow::kWeightStationary,
                                    hw::Dataflow::kOutputStationary}) {
                const int64_t expect = plain.ComputeCycles(l, pu, df);
                // Twice: once filling the memo, once hitting it.
                EXPECT_EQ(memoized.ComputeCycles(l, pu, df), expect);
                EXPECT_EQ(memoized.ComputeCycles(l, pu, df), expect);
            }
        }
    }
    EXPECT_GT(memoized.MemoSize(), 0u);
}

TEST(CostMemoTest, CopiesShareOneMemo)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel model;
    model.EnableMemo();
    cost::CostModel copy = model;  // shares the memo
    const hw::PuConfig pu{16, 16};
    for (const auto& l : w.layers)
        copy.ComputeCycles(l, pu, hw::Dataflow::kWeightStationary);
    EXPECT_GT(model.MemoSize(), 0u);
    EXPECT_EQ(model.MemoSize(), copy.MemoSize());
}

TEST(CostMemoTest, ConcurrentComputeCyclesAgree)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel plain;
    cost::CostModel memoized;
    memoized.EnableMemo();
    const hw::PuConfig pu{8, 8};

    std::vector<int64_t> expect;
    for (const auto& l : w.layers)
        expect.push_back(plain.ComputeCycles(l, pu, hw::Dataflow::kWeightStationary));

    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int round = 0; round < 20; ++round)
                for (size_t i = 0; i < w.layers.size(); ++i)
                    if (memoized.ComputeCycles(w.layers[i], pu,
                                               hw::Dataflow::kWeightStationary) !=
                        expect[i])
                        bad++;
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(bad.load(), 0);
}

TEST(EvaluatorTest, MatchesDirectAllocatorPath)
{
    // The Evaluator must reproduce exactly what a hand-rolled
    // allocator + metrics loop produces (that is the refactor's
    // contract: call sites migrate without result drift).
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    alloc::Allocator direct(cost_model);
    Evaluator evaluator(cost_model, EvalOptions{4, true});

    const hw::Platform budget = hw::EyerissBudget();
    seg::Assignment a = seg::EvenSegmentation(w, 4, 2);
    const auto want = direct.Allocate(w, a, budget, alloc::DesignGoal::kLatency);
    const auto got = evaluator.Allocate(w, a, budget, alloc::DesignGoal::kLatency);
    ASSERT_EQ(got.ok, want.ok);
    if (want.ok) {
        EXPECT_EQ(got.latency_seconds, want.latency_seconds);
        EXPECT_EQ(got.throughput_fps, want.throughput_fps);
        EXPECT_EQ(got.config.ToString(), want.config.ToString());
    }

    const auto full =
        evaluator.EvaluateCandidate(w, a, budget, alloc::DesignGoal::kLatency);
    EXPECT_EQ(full.ok(), want.ok);
    const auto metrics = seg::ComputeMetrics(w, a);
    EXPECT_EQ(full.metrics.min_ctc, metrics.min_ctc);
    EXPECT_EQ(full.metrics.sod, metrics.sod);
}

TEST(CostMemoTest, StripedShardsAccountHitsAndMissesExactly)
{
    // The sharded memo must keep exact books. Phase 1 (serial fill):
    // every distinct key is one miss, every repeat is one hit, so
    // misses == Size() and hits == lookups - Size(). Phase 2 (pool
    // hammer of resident keys at jobs=8): hits grow by exactly the
    // number of lookups, misses and Size() stay put.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel memoized;
    memoized.EnableMemo();
    const std::vector<hw::PuConfig> shapes = {{4, 4}, {8, 8}, {16, 8}};

    int64_t lookups = 0;
    for (const auto& l : w.layers) {
        for (const auto& pu : shapes) {
            memoized.ComputeCycles(l, pu, hw::Dataflow::kWeightStationary);
            ++lookups;
        }
    }
    const int64_t distinct = static_cast<int64_t>(memoized.MemoSize());
    EXPECT_GT(distinct, 0);
    EXPECT_EQ(memoized.MemoMisses(), distinct);
    EXPECT_EQ(memoized.MemoHits(), lookups - distinct);

    ThreadPool pool(8);
    constexpr int64_t kRounds = 50;
    const int64_t num_layers = static_cast<int64_t>(w.layers.size());
    pool.ParallelFor(kRounds * num_layers, [&](int64_t i) {
        const auto& l = w.layers[static_cast<size_t>(i % num_layers)];
        for (const auto& pu : shapes)
            memoized.ComputeCycles(l, pu, hw::Dataflow::kWeightStationary);
    });
    const int64_t hammer_lookups =
        kRounds * num_layers * static_cast<int64_t>(shapes.size());
    EXPECT_EQ(memoized.MemoSize(), static_cast<size_t>(distinct));
    EXPECT_EQ(memoized.MemoMisses(), distinct);
    EXPECT_EQ(memoized.MemoHits(), lookups - distinct + hammer_lookups);
}

TEST(CostMemoTest, ConcurrentFillKeepsBooksConsistent)
{
    // Concurrent first-touch of fresh keys may race (both threads miss,
    // one insert wins), but the invariants survive: Size() is the
    // distinct-key count and hits + misses equals total lookups.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel serial_model;
    serial_model.EnableMemo();
    const std::vector<hw::PuConfig> shapes = {{8, 8}, {32, 4}};
    for (const auto& l : w.layers)
        for (const auto& pu : shapes)
            serial_model.ComputeCycles(l, pu, hw::Dataflow::kOutputStationary);
    const size_t distinct = serial_model.MemoSize();

    cost::CostModel memoized;
    memoized.EnableMemo();
    ThreadPool pool(8);
    const int64_t num_layers = static_cast<int64_t>(w.layers.size());
    pool.ParallelFor(8 * num_layers, [&](int64_t i) {
        const auto& l = w.layers[static_cast<size_t>(i % num_layers)];
        for (const auto& pu : shapes)
            memoized.ComputeCycles(l, pu, hw::Dataflow::kOutputStationary);
    });
    const int64_t total =
        8 * num_layers * static_cast<int64_t>(shapes.size());
    EXPECT_EQ(memoized.MemoSize(), distinct);
    EXPECT_EQ(memoized.MemoHits() + memoized.MemoMisses(), total);
    EXPECT_GE(memoized.MemoMisses(), static_cast<int64_t>(distinct));
}

TEST(EvaluatorTest, CandidateMetricsReusedFromAllocation)
{
    // EvaluateCandidate must hand back the metric bundle Alg. 1 already
    // computed (AllocationResult::metrics) instead of rescanning — and
    // that bundle must equal the naive recomputation.
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel cost_model;
    Evaluator evaluator(cost_model, EvalOptions{1, true});
    seg::Assignment a = seg::EvenSegmentation(w, 3, 2);
    const auto full = evaluator.EvaluateCandidate(
        w, a, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    ASSERT_NE(full.alloc.metrics, nullptr);
    const auto naive = seg::ComputeMetrics(w, a);
    EXPECT_EQ(full.metrics.min_ctc, naive.min_ctc);
    EXPECT_EQ(full.metrics.sod, naive.sod);
    EXPECT_EQ(full.metrics.seg_ops, naive.seg_ops);
    EXPECT_EQ(full.metrics.seg_access, naive.seg_access);
    EXPECT_EQ(full.metrics.v, naive.v);
}

TEST(EvaluatorTest, BatchEvaluationPreservesInputOrder)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Evaluator serial(cost_model, EvalOptions{1, true});
    Evaluator parallel(cost_model, EvalOptions{8, true});

    std::vector<seg::Assignment> candidates;
    for (int layers_per_seg : {2, 3, 4, 5, 6})
        candidates.push_back(seg::EvenSegmentation(w, layers_per_seg, 2));

    const hw::Platform budget = hw::EyerissBudget();
    const auto a =
        serial.EvaluateCandidates(w, candidates, budget, alloc::DesignGoal::kLatency);
    const auto b = parallel.EvaluateCandidates(w, candidates, budget,
                                               alloc::DesignGoal::kLatency);
    ASSERT_EQ(a.size(), candidates.size());
    ASSERT_EQ(b.size(), candidates.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ok(), b[i].ok());
        if (a[i].ok()) {
            EXPECT_EQ(a[i].alloc.latency_seconds, b[i].alloc.latency_seconds);
            EXPECT_EQ(a[i].alloc.config.ToString(), b[i].alloc.config.ToString());
            EXPECT_EQ(a[i].metrics.min_ctc, b[i].metrics.min_ctc);
        }
    }
}

TEST(EvaluatorTest, ObjectivesReturnInputOrder)
{
    cost::CostModel cost_model;
    Evaluator evaluator(cost_model, EvalOptions{8, false});
    std::vector<std::vector<int>> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back({i, 2 * i});
    const auto ys = evaluator.Objectives(
        xs, [](const std::vector<int>& x) { return x[0] + 0.5 * x[1]; });
    ASSERT_EQ(ys.size(), xs.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(ys[static_cast<size_t>(i)], 2.0 * i);
}

TEST(SegmentationCacheTest, CountersTrackHitsMissesInserts)
{
    SegmentationCache cache;
    std::optional<seg::Assignment> out;
    EXPECT_FALSE(cache.Lookup("net", 1, 1, out));  // miss
    EXPECT_EQ(cache.Misses(), 1);
    EXPECT_EQ(cache.Hits(), 0);
    EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);

    seg::Assignment a;
    a.num_segments = 1;
    a.num_pus = 1;
    cache.Store("net", 1, 1, a);
    EXPECT_EQ(cache.Inserts(), 1);
    EXPECT_TRUE(cache.Lookup("net", 1, 1, out));  // hit
    EXPECT_TRUE(cache.Lookup("net", 1, 1, out));  // hit
    EXPECT_EQ(cache.Hits(), 2);
    EXPECT_EQ(cache.Misses(), 1);
    EXPECT_DOUBLE_EQ(cache.HitRate(), 2.0 / 3.0);
}

TEST(CostMemoTest, CountsHitsAndMisses)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    cost::CostModel model;
    model.EnableMemo();
    const hw::PuConfig pu{16, 16};
    model.ComputeCycles(w.layers[0], pu, hw::Dataflow::kWeightStationary);
    EXPECT_EQ(model.MemoHits(), 0);
    EXPECT_EQ(model.MemoMisses(), 1);
    model.ComputeCycles(w.layers[0], pu, hw::Dataflow::kWeightStationary);
    EXPECT_EQ(model.MemoHits(), 1);
    EXPECT_EQ(model.MemoMisses(), 1);
}

TEST(EvaluatorTest, EngineRerunHitsSegmentationCache)
{
    // Satellite requirement: a second engine run over the same model
    // with the same external cache must actually hit it (> 0 hits) and
    // must return bitwise-identical results -- the reuse the paper's
    // Sec. V promises across hardware budgets.
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 8;
    options.jobs = 2;
    autoseg::Engine engine(cost_model, options);
    autoseg::SegmentationCache cache;

    const hw::Platform budget = hw::EyerissBudget();
    const auto first = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
    ASSERT_TRUE(first.ok);
    EXPECT_GT(cache.Inserts(), 0);
    const int64_t hits_before = cache.Hits();

    const auto second = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
    ASSERT_TRUE(second.ok);
    EXPECT_GT(cache.Hits(), hits_before);

    // Warm pairs evaluate only the cached shape (cold pairs sweep all
    // shapes), so the explored trace may differ -- but the winning
    // design must not.
    EXPECT_EQ(first.alloc.latency_seconds, second.alloc.latency_seconds);
    EXPECT_EQ(first.alloc.config.ToString(), second.alloc.config.ToString());
    EXPECT_EQ(first.assignment.segment_of, second.assignment.segment_of);
    EXPECT_EQ(first.assignment.pu_of, second.assignment.pu_of);

    // Two warm runs see identical cache state: fully identical results,
    // explored trace included.
    const auto third = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
    ASSERT_TRUE(third.ok);
    EXPECT_EQ(second.alloc.latency_seconds, third.alloc.latency_seconds);
    EXPECT_EQ(second.alloc.config.ToString(), third.alloc.config.ToString());
    ASSERT_EQ(second.explored.size(), third.explored.size());
    for (size_t i = 0; i < second.explored.size(); ++i) {
        EXPECT_EQ(second.explored[i].latency_seconds,
                  third.explored[i].latency_seconds);
        EXPECT_EQ(second.explored[i].feasible, third.explored[i].feasible);
    }
}

TEST(EvaluatorTest, RepeatedEvaluationHitsCostMemo)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Evaluator evaluator(cost_model, EvalOptions{2, true});
    seg::Assignment a = seg::EvenSegmentation(w, 4, 2);
    const hw::Platform budget = hw::EyerissBudget();
    const auto first =
        evaluator.EvaluateCandidate(w, a, budget, alloc::DesignGoal::kLatency);
    const auto second =
        evaluator.EvaluateCandidate(w, a, budget, alloc::DesignGoal::kLatency);
    EXPECT_GT(evaluator.cost_model().MemoHits(), 0);
    EXPECT_EQ(first.alloc.latency_seconds, second.alloc.latency_seconds);
}

TEST(EvaluatorTest, SegmentationCacheIsSharedAndUsable)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    Evaluator evaluator(cost_model, EvalOptions{2, true});
    seg::Assignment a = seg::EvenSegmentation(w, 4, 2);
    evaluator.segmentation_cache().Store(w.name, a.num_segments, a.num_pus, a);
    std::optional<seg::Assignment> out;
    ASSERT_TRUE(evaluator.segmentation_cache().Lookup(w.name, a.num_segments,
                                                      a.num_pus, out));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->pu_of, a.pu_of);
}

}  // namespace
}  // namespace eval
}  // namespace spa
