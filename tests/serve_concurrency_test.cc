// Concurrency tests for the autoseg_served stack, written to run under
// tsan: several clients hammering one server, admission control turning
// away over-capacity connections with a structured kUnavailable (never a
// hang), per-request deadlines firing as kDeadlineExceeded, and — the
// serving determinism contract — results independent of how concurrent
// requests interleave on the shared session.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "hw/platform.h"
#include "json/json.h"
#include "nn/loader.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace spa {
namespace serve {
namespace {

const char* kTinyModelJson = R"({
  "name": "servenet",
  "input": {"c": 3, "h": 32, "w": 32},
  "layers": [
    {"name": "c1", "type": "conv", "out": 16, "k": 3, "stride": 1, "pad": 1},
    {"name": "c2", "type": "conv", "out": 16, "k": 3, "stride": 2, "pad": 1},
    {"name": "c3", "type": "conv", "out": 32, "k": 3, "stride": 1, "pad": 1},
    {"name": "c4", "type": "conv", "out": 32, "k": 3, "stride": 2, "pad": 1},
    {"name": "c5", "type": "conv", "out": 64, "k": 3, "stride": 1, "pad": 1},
    {"name": "fc", "type": "fc", "out": 10}
  ]
})";

/** A codesign request; `max_pairs` < 0 means unbudgeted. */
json::Value
CodesignRequest(const std::string& id, const std::string& platform,
                int64_t max_pairs)
{
    json::Value req;
    req["id"] = id;
    req["method"] = "codesign";
    req["model_json"] = json::ParseOrDie(kTinyModelJson);
    req["platform"] = platform;
    json::Value search;
    json::Array pus;
    pus.push_back(json::Value(2));
    pus.push_back(json::Value(4));
    search["pus"] = json::Value(std::move(pus));
    search["max_segments"] = 6;
    req["search"] = std::move(search);
    json::Value budget;
    budget["mip_node_budget"] = 256;
    if (max_pairs >= 0)
        budget["max_pairs"] = max_pairs;
    req["budget"] = std::move(budget);
    return req;
}

TEST(ServeConcurrencyTest, SchedulerAdmitsUpToCapacityThenRejects)
{
    JobScheduler scheduler(SchedulerOptions{/*workers=*/2, /*max_pending=*/1});
    scheduler.Start();
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    auto blocker = [&] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
    };
    // 2 workers + 1 queue slot admit exactly three jobs.
    EXPECT_TRUE(scheduler.Submit(blocker).ok());
    EXPECT_TRUE(scheduler.Submit(blocker).ok());
    EXPECT_TRUE(scheduler.Submit(blocker).ok());
    const Status fourth = scheduler.Submit(blocker);
    ASSERT_FALSE(fourth.ok());
    EXPECT_EQ(fourth.code(), StatusCode::kUnavailable);
    EXPECT_EQ(scheduler.Rejected(), 1);
    release.store(true);
    scheduler.Stop();  // drains the admitted three
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(scheduler.Admitted(), 3);
}

TEST(ServeConcurrencyTest, OverCapacityConnectionGetsStructuredUnavailable)
{
    cost::CostModel cost_model;
    ServerOptions options;
    options.workers = 1;
    options.max_pending = 0;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());

    // Occupy the single worker: a connection holds its worker for its
    // whole lifetime, even while idle.
    Client occupant;
    ASSERT_TRUE(occupant.Connect(server.port()).ok());
    json::Value ping;
    ping["method"] = "ping";
    ASSERT_TRUE(occupant.Call(ping).ok());  // ensures the job started
    for (int i = 0; i < 100 && server.scheduler().ActiveJobs() < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(server.scheduler().ActiveJobs(), 1);

    // The second connection is rejected before any work: it still gets
    // a parseable response naming the reason, then the socket closes.
    Client rejected;
    ASSERT_TRUE(rejected.Connect(server.port()).ok());
    StatusOr<json::Value> response = rejected.Call(ping);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->GetBool("ok", true));
    EXPECT_EQ(response->GetString("code", ""), "UNAVAILABLE");

    occupant.Close();
    rejected.Close();
    server.Stop();
}

TEST(ServeConcurrencyTest, TickDeadlineFiresAsDeadlineExceededNotAHang)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());

    // alexnet under pus {1,2,4} enumerates 11 (S, N) pairs — more than
    // one evaluation chunk — and a 1-tick budget expires deterministically
    // before the second chunk starts.
    json::Value req;
    req["id"] = "dl";
    req["method"] = "codesign";
    req["model"] = "alexnet";
    req["platform"] = "eyeriss";
    json::Value search;
    json::Array pus;
    pus.push_back(json::Value(1));
    pus.push_back(json::Value(2));
    pus.push_back(json::Value(4));
    search["pus"] = json::Value(std::move(pus));
    search["max_segments"] = 6;
    req["search"] = std::move(search);
    json::Value budget;
    budget["mip_node_budget"] = 256;
    budget["deadline_ticks"] = 1;
    req["budget"] = std::move(budget);

    const json::Value response = server.HandleRequestLine(req.Dump());
    // The request itself is answered (ok), carrying a result entry that
    // reports the budget expiry as a structured status.
    ASSERT_TRUE(response.GetBool("ok", false));
    const json::Value& entry = response.At("results")[0];
    EXPECT_EQ(entry.GetString("status_code", ""), "DEADLINE_EXCEEDED");
    EXPECT_TRUE(entry.GetBool("truncated", false));
    server.Stop();
}

TEST(ServeConcurrencyTest, ConcurrentMixedClientsMatchSerialAnswers)
{
    // Serial reference: each distinct request answered by its own cold
    // server, one at a time.
    struct Case
    {
        std::string id;
        std::string platform;
        int64_t max_pairs;
    };
    const std::vector<Case> cases = {
        {"a", "eyeriss", -1},     {"b", "nvdla_small", -1},
        {"c", "eyeriss", 3},      {"d", "nvdla_large", -1},
        {"e", "eyeriss", -1},     {"f", "nvdla_small", 3},
    };
    std::vector<std::string> reference(cases.size());
    for (size_t i = 0; i < cases.size(); ++i) {
        cost::CostModel cost_model;
        Server server(cost_model, ServerOptions{});
        ASSERT_TRUE(server.Start().ok());
        const json::Value response = server.HandleRequestLine(
            CodesignRequest(cases[i].id, cases[i].platform, cases[i].max_pairs)
                .Dump());
        ASSERT_TRUE(response.GetBool("ok", false)) << cases[i].id;
        reference[i] = response.At("results").Dump();
        server.Stop();
    }

    // Concurrent run: all six clients against ONE server (shared
    // session, shared caches), interleaving freely. Every response must
    // match its serial reference byte for byte — the outcome cache only
    // admits budget-clean solves, so no client's budget can leak into
    // another's answer.
    cost::CostModel cost_model;
    ServerOptions options;
    options.workers = 6;
    options.max_pending = 6;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::string> served(cases.size());
    std::vector<Status> failures(cases.size());
    std::vector<std::thread> clients;
    clients.reserve(cases.size());
    for (size_t i = 0; i < cases.size(); ++i) {
        clients.emplace_back([&, i] {
            Client client;
            const Status connected = client.Connect(server.port());
            if (!connected.ok()) {
                failures[i] = connected;
                return;
            }
            StatusOr<json::Value> response = client.Call(CodesignRequest(
                cases[i].id, cases[i].platform, cases[i].max_pairs));
            if (!response.ok()) {
                failures[i] = response.status();
                return;
            }
            if (!response->GetBool("ok", false)) {
                failures[i] =
                    Internal("response not ok: " + response->Dump());
                return;
            }
            served[i] = response->At("results").Dump();
        });
    }
    for (std::thread& t : clients)
        t.join();
    server.Stop();

    for (size_t i = 0; i < cases.size(); ++i) {
        ASSERT_TRUE(failures[i].ok())
            << cases[i].id << ": " << failures[i].ToString();
        EXPECT_EQ(served[i], reference[i]) << cases[i].id;
    }
}

TEST(ServeConcurrencyTest, RepeatedConcurrentRunsAreInterleavingIndependent)
{
    // The same mixed fleet twice against fresh servers: both rounds
    // must produce identical bytes even though thread interleavings
    // differ — nondeterminism would show up as a diff between rounds.
    auto run_round = [] {
        cost::CostModel cost_model;
        ServerOptions options;
        options.workers = 4;
        options.max_pending = 4;
        Server server(cost_model, options);
        EXPECT_TRUE(server.Start().ok());
        const std::vector<std::string> platforms = {"eyeriss", "nvdla_small",
                                                    "eyeriss", "nvdla_small"};
        std::vector<std::string> results(platforms.size());
        std::vector<std::thread> clients;
        for (size_t i = 0; i < platforms.size(); ++i) {
            clients.emplace_back([&, i] {
                Client client;
                if (!client.Connect(server.port()).ok())
                    return;
                StatusOr<json::Value> response = client.Call(CodesignRequest(
                    "r" + std::to_string(i), platforms[i], -1));
                if (response.ok() && response->GetBool("ok", false))
                    results[i] = response->At("results").Dump();
            });
        }
        for (std::thread& t : clients)
            t.join();
        server.Stop();
        return results;
    };
    const std::vector<std::string> first = run_round();
    const std::vector<std::string> second = run_round();
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_FALSE(first[i].empty()) << i;
        EXPECT_EQ(first[i], second[i]) << i;
    }
}

}  // namespace
}  // namespace serve
}  // namespace spa
