// Unit tests for the JSON model-description frontend.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/status.h"
#include "nn/loader.h"
#include "nn/models.h"

namespace spa {
namespace nn {
namespace {

const char* kTinyModel = R"({
  "name": "tiny",
  "input": {"c": 3, "h": 32, "w": 32},
  "layers": [
    {"name": "c1", "type": "conv", "out": 16, "k": 3, "stride": 1, "pad": 1},
    {"name": "p1", "type": "maxpool", "k": 2},
    {"name": "c2a", "type": "conv", "out": 8, "k": 1, "pad": 0, "inputs": ["p1"]},
    {"name": "c2b", "type": "conv", "out": 8, "k": 3, "pad": 1, "inputs": ["p1"]},
    {"name": "cat", "type": "concat", "inputs": ["c2a", "c2b"]},
    {"name": "fc", "type": "fc", "out": 10, "inputs": ["cat"]}
  ]
})";

TEST(LoaderTest, BuildsTinyModel)
{
    Graph g = GraphFromJson(json::ParseOrDie(kTinyModel));
    EXPECT_EQ(g.name(), "tiny");
    EXPECT_EQ(g.layer(g.FindLayer("c1")).out_shape(), (Shape{16, 32, 32}));
    EXPECT_EQ(g.layer(g.FindLayer("p1")).out_shape(), (Shape{16, 16, 16}));
    EXPECT_EQ(g.layer(g.FindLayer("cat")).out_shape(), (Shape{16, 16, 16}));
    EXPECT_EQ(g.layer(g.FindLayer("fc")).out_shape(), (Shape{10, 1, 1}));
}

TEST(LoaderTest, SequentialDefaultInputs)
{
    Graph g = GraphFromJson(json::ParseOrDie(kTinyModel));
    // p1's implicit input is c1.
    const Layer& p1 = g.layer(g.FindLayer("p1"));
    EXPECT_EQ(p1.inputs()[0], g.FindLayer("c1"));
}

TEST(LoaderTest, DepthwiseType)
{
    const char* doc = R"({
      "input": {"c": 8, "h": 16, "w": 16},
      "layers": [{"name": "dw", "type": "dwconv", "k": 3, "stride": 1, "pad": 1}]
    })";
    Graph g = GraphFromJson(json::ParseOrDie(doc));
    EXPECT_TRUE(g.layer(g.FindLayer("dw")).IsDepthwise());
}

TEST(LoaderTest, GroupsParsed)
{
    const char* doc = R"({
      "input": {"c": 8, "h": 16, "w": 16},
      "layers": [{"name": "c", "type": "conv", "out": 8, "k": 3, "pad": 1, "groups": 2}]
    })";
    Graph g = GraphFromJson(json::ParseOrDie(doc));
    EXPECT_EQ(g.layer(g.FindLayer("c")).params().groups, 2);
}

TEST(LoaderDeathTest, UnknownTypeFatals)
{
    const char* doc = R"({
      "input": {"c": 3, "h": 8, "w": 8},
      "layers": [{"name": "x", "type": "warp", "out": 3}]
    })";
    EXPECT_EXIT(GraphFromJson(json::ParseOrDie(doc)), testing::ExitedWithCode(1),
                "unsupported layer type");
}

TEST(LoaderDeathTest, UnknownInputFatals)
{
    const char* doc = R"({
      "input": {"c": 3, "h": 8, "w": 8},
      "layers": [{"name": "c", "type": "conv", "out": 4, "k": 3,
                  "inputs": ["missing"]}]
    })";
    EXPECT_EXIT(GraphFromJson(json::ParseOrDie(doc)), testing::ExitedWithCode(1),
                "no layer named");
}

TEST(LoaderTest, RoundTripThroughJson)
{
    Graph g = GraphFromJson(json::ParseOrDie(kTinyModel));
    json::Value serialized = GraphToJson(g);
    Graph g2 = GraphFromJson(serialized);
    ASSERT_EQ(g.size(), g2.size());
    for (size_t i = 0; i < g.size(); ++i) {
        EXPECT_EQ(g.layers()[i].name(), g2.layers()[i].name());
        EXPECT_EQ(g.layers()[i].type(), g2.layers()[i].type());
        EXPECT_EQ(g.layers()[i].out_shape(), g2.layers()[i].out_shape());
        EXPECT_EQ(g.layers()[i].Macs(), g2.layers()[i].Macs());
    }
}

TEST(LoaderTest, ZooModelsSurviveRoundTrip)
{
    for (const char* name : {"alexnet", "squeezenet", "mobilenet_v2"}) {
        Graph g = BuildModel(name);
        Graph g2 = GraphFromJson(GraphToJson(g));
        EXPECT_EQ(g.TotalMacs(), g2.TotalMacs()) << name;
        EXPECT_EQ(g.TotalWeightElems(), g2.TotalWeightElems()) << name;
    }
}

// The StatusOr loader surface: the same failures the death tests pin
// down must come back as structured errors instead of a process exit.

TEST(LoaderRobustnessTest, ValidFileLoads)
{
    const std::string path = testing::TempDir() + "spa_loader_ok.json";
    {
        std::ofstream out(path);
        out << kTinyModel;
    }
    StatusOr<Graph> g = LoadGraphOr(path);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(g->name(), "tiny");
    std::remove(path.c_str());
}

TEST(LoaderRobustnessTest, MissingFileIsIoError)
{
    StatusOr<Graph> g = LoadGraphOr("/nonexistent-spa-model.json");
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::kIoError);
    // The path must appear in the diagnostic.
    EXPECT_NE(g.status().message().find("nonexistent-spa-model"),
              std::string::npos);
}

TEST(LoaderRobustnessTest, SyntaxErrorReportsByteOffset)
{
    const std::string path = testing::TempDir() + "spa_loader_syntax.json";
    {
        std::ofstream out(path);
        out << "{\"input\": {\"c\": 3,, }";
    }
    StatusOr<Graph> g = LoadGraphOr(path);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(g.status().message().find("byte offset"), std::string::npos)
        << g.status().message();
    std::remove(path.c_str());
}

TEST(LoaderRobustnessTest, SchemaErrorsAreInvalidArgument)
{
    // Not an object at all.
    EXPECT_EQ(GraphFromJsonOr(json::Value(7)).status().code(),
              StatusCode::kInvalidArgument);
    // Missing the layers array.
    EXPECT_EQ(
        GraphFromJsonOr(json::ParseOrDie(R"({"input": {"c": 1, "h": 2, "w": 2}})"))
            .status()
            .code(),
        StatusCode::kInvalidArgument);
    // Unknown layer type: fatal in GraphFromJson, structured here.
    StatusOr<Graph> bad = GraphFromJsonOr(json::ParseOrDie(R"({
      "input": {"c": 3, "h": 8, "w": 8},
      "layers": [{"name": "x", "type": "warp", "out": 3}]
    })"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bad.status().message().find("unsupported layer type"),
              std::string::npos)
        << bad.status().message();
    // Dangling input reference.
    EXPECT_EQ(GraphFromJsonOr(json::ParseOrDie(R"({
      "input": {"c": 3, "h": 8, "w": 8},
      "layers": [{"name": "c", "type": "conv", "out": 4, "k": 3,
                  "inputs": ["missing"]}]
    })")).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(LoaderRobustnessTest, UnknownOpInFileReportsByteOffset)
{
    const std::string doc = R"({
      "input": {"c": 3, "h": 8, "w": 8},
      "layers": [
        {"name": "c1", "type": "conv", "out": 4, "k": 3},
        {"name": "x", "type": "warp", "out": 3}
      ]
    })";
    const std::string path = testing::TempDir() + "spa_loader_unknown_op.json";
    {
        std::ofstream out(path);
        out << doc;
    }
    StatusOr<Graph> g = LoadGraphOr(path);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
    // The diagnostic names the offending op, the layer, and where the
    // op name sits in the file.
    EXPECT_NE(g.status().message().find("unsupported layer type 'warp'"),
              std::string::npos)
        << g.status().message();
    EXPECT_NE(g.status().message().find("'x'"), std::string::npos);
    const size_t pos = g.status().message().find("at byte offset ");
    ASSERT_NE(pos, std::string::npos) << g.status().message();
    const long offset =
        std::stol(g.status().message().substr(pos + std::strlen("at byte offset ")));
    EXPECT_EQ(doc.substr(static_cast<size_t>(offset), 4), "warp");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace spa
