// Unit tests for the minimal JSON parser / serializer.

#include <gtest/gtest.h>

#include "json/json.h"

namespace spa {
namespace json {
namespace {

TEST(JsonParseTest, Scalars)
{
    EXPECT_TRUE(ParseOrDie("null").IsNull());
    EXPECT_TRUE(ParseOrDie("true").AsBool());
    EXPECT_FALSE(ParseOrDie("false").AsBool());
    EXPECT_DOUBLE_EQ(ParseOrDie("3.5").AsDouble(), 3.5);
    EXPECT_EQ(ParseOrDie("-17").AsInt(), -17);
    EXPECT_DOUBLE_EQ(ParseOrDie("1e3").AsDouble(), 1000.0);
    EXPECT_EQ(ParseOrDie("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, Containers)
{
    Value v = ParseOrDie(R"({"a": [1, 2, 3], "b": {"c": true}})");
    ASSERT_TRUE(v.IsObject());
    EXPECT_EQ(v.At("a").size(), 3u);
    EXPECT_EQ(v.At("a")[1].AsInt(), 2);
    EXPECT_TRUE(v.At("b").At("c").AsBool());
}

TEST(JsonParseTest, NestedDeep)
{
    Value v = ParseOrDie(R"([[[[[42]]]]])");
    EXPECT_EQ(v[size_t{0}][size_t{0}][size_t{0}][size_t{0}][size_t{0}].AsInt(), 42);
}

TEST(JsonParseTest, StringEscapes)
{
    Value v = ParseOrDie(R"("a\nb\t\"q\"\\A")");
    EXPECT_EQ(v.AsString(), "a\nb\t\"q\"\\A");
}

TEST(JsonParseTest, UnicodeEscapesUtf8)
{
    EXPECT_EQ(ParseOrDie(R"("é")").AsString(), "\xc3\xa9");      // e-acute
    EXPECT_EQ(ParseOrDie(R"("中")").AsString(), "\xe4\xb8\xad");  // CJK
}

TEST(JsonParseTest, WhitespaceTolerant)
{
    Value v = ParseOrDie("  {\n\t\"k\" :\r 1 }  ");
    EXPECT_EQ(v.At("k").AsInt(), 1);
}

TEST(JsonParseTest, EmptyContainers)
{
    EXPECT_EQ(ParseOrDie("[]").size(), 0u);
    EXPECT_EQ(ParseOrDie("{}").size(), 0u);
}

TEST(JsonParseTest, ErrorsReported)
{
    EXPECT_FALSE(Parse("").ok);
    EXPECT_FALSE(Parse("{").ok);
    EXPECT_FALSE(Parse("[1,]").ok);
    EXPECT_FALSE(Parse("{\"a\":}").ok);
    EXPECT_FALSE(Parse("\"unterminated").ok);
    EXPECT_FALSE(Parse("tru").ok);
    EXPECT_FALSE(Parse("1 2").ok);
    EXPECT_FALSE(Parse("{'a':1}").ok);
    EXPECT_FALSE(Parse("[0x10]").ok);
}

TEST(JsonParseTest, ErrorPositionIsUseful)
{
    ParseResult r = Parse("[1, 2, oops]");
    ASSERT_FALSE(r.ok);
    EXPECT_GE(r.error_pos, 7u);
}

TEST(JsonDumpTest, RoundTripCompact)
{
    const std::string src = R"({"arr":[1,2.5,"x"],"flag":true,"n":null})";
    Value v = ParseOrDie(src);
    Value v2 = ParseOrDie(v.Dump());
    EXPECT_TRUE(v == v2);
}

TEST(JsonDumpTest, RoundTripPretty)
{
    Value v = ParseOrDie(R"({"a":{"b":[1,{"c":"deep"}]}})");
    Value v2 = ParseOrDie(v.Pretty());
    EXPECT_TRUE(v == v2);
}

TEST(JsonDumpTest, IntegersPrintWithoutFraction)
{
    Value v(static_cast<int64_t>(123456789));
    EXPECT_EQ(v.Dump(), "123456789");
}

TEST(JsonDumpTest, EscapesInOutput)
{
    Value v(std::string("a\"b\\c\nd"));
    EXPECT_EQ(v.Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonValueTest, Accessors)
{
    Value v;
    v["x"] = Value(5);
    v["y"] = Value("s");
    EXPECT_TRUE(v.Has("x"));
    EXPECT_FALSE(v.Has("z"));
    EXPECT_EQ(v.GetInt("x", -1), 5);
    EXPECT_EQ(v.GetInt("z", -1), -1);
    EXPECT_EQ(v.GetString("y", ""), "s");
    EXPECT_EQ(v.GetString("z", "dflt"), "dflt");
    EXPECT_EQ(v.GetDouble("z", 2.5), 2.5);
    EXPECT_TRUE(v.GetBool("z", true));
}

TEST(JsonValueTest, TypePredicates)
{
    EXPECT_TRUE(Value().IsNull());
    EXPECT_TRUE(Value(true).IsBool());
    EXPECT_TRUE(Value(1.0).IsNumber());
    EXPECT_TRUE(Value("s").IsString());
    EXPECT_TRUE(Value(Array{}).IsArray());
    EXPECT_TRUE(Value(Object{}).IsObject());
}

TEST(JsonValueDeathTest, TypeMismatchPanics)
{
    Value v(1.5);
    EXPECT_DEATH(v.AsString(), "not a string");
    EXPECT_DEATH(v.At("k"), "not an object");
}

TEST(JsonFileTest, SaveAndLoad)
{
    Value v;
    v["model"] = Value("tiny");
    v["layers"] = Value(Array{Value(1), Value(2)});
    const std::string path = testing::TempDir() + "/spa_json_test.json";
    SaveFile(path, v);
    Value loaded = LoadFile(path);
    EXPECT_TRUE(v == loaded);
}

}  // namespace
}  // namespace json
}  // namespace spa
