// Service test suite for the autoseg_served stack: protocol parsing and
// validation, the Session cache semantics behind the daemon, the full
// in-process and over-the-socket request lifecycle, golden parity of
// served answers against the direct Engine path, warm-cache round trips
// across a simulated restart, and fault-injection robustness of the
// request path.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "autoseg/autoseg.h"
#include "common/fault.h"
#include "hw/platform.h"
#include "json/json.h"
#include "nn/loader.h"
#include "nn/models.h"
#include "nn/workload.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace spa {
namespace serve {
namespace {

/** A small conv net: fast to co-design, non-trivial to segment. */
const char* kTinyModelJson = R"({
  "name": "servenet",
  "input": {"c": 3, "h": 32, "w": 32},
  "layers": [
    {"name": "c1", "type": "conv", "out": 16, "k": 3, "stride": 1, "pad": 1},
    {"name": "c2", "type": "conv", "out": 16, "k": 3, "stride": 2, "pad": 1},
    {"name": "c3", "type": "conv", "out": 32, "k": 3, "stride": 1, "pad": 1},
    {"name": "c4", "type": "conv", "out": 32, "k": 3, "stride": 2, "pad": 1},
    {"name": "c5", "type": "conv", "out": 64, "k": 3, "stride": 1, "pad": 1},
    {"name": "fc", "type": "fc", "out": 10}
  ]
})";

/** The request-side twin of FastSearch() below; an empty `platform`
 * leaves the key out (for tests that set a 'platforms' array). */
json::Value
CodesignRequest(const std::string& id,
                const std::string& platform = "eyeriss")
{
    json::Value req;
    req["id"] = id;
    req["method"] = "codesign";
    req["model_json"] = json::ParseOrDie(kTinyModelJson);
    if (!platform.empty())
        req["platform"] = platform;
    json::Value search;
    json::Array pus;
    pus.push_back(json::Value(2));
    pus.push_back(json::Value(4));
    search["pus"] = json::Value(std::move(pus));
    search["max_segments"] = 6;
    req["search"] = std::move(search);
    json::Value budget;
    budget["mip_node_budget"] = 256;
    req["budget"] = std::move(budget);
    return req;
}

/** The engine-side twin of CodesignRequest(). */
autoseg::CoDesignOptions
FastSearch()
{
    autoseg::CoDesignOptions options;
    options.pu_candidates = {2, 4};
    options.max_segments = 6;
    options.mip_node_budget = 256;
    return options;
}

nn::Workload
TinyWorkload()
{
    StatusOr<nn::Graph> graph =
        nn::GraphFromJsonOr(json::ParseOrDie(kTinyModelJson));
    EXPECT_TRUE(graph.ok());
    return nn::ExtractWorkload(*graph);
}

// ---- Protocol parsing and validation. ----

TEST(ServeProtocolTest, ParsesAFullCodesignRequest)
{
    StatusOr<Request> request =
        ParseRequestOr(CodesignRequest("r7", "ku115").Dump());
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    EXPECT_EQ(request->id, "r7");
    EXPECT_EQ(request->method, Method::kCoDesign);
    EXPECT_EQ(request->workload.name, "servenet");
    ASSERT_EQ(request->platforms.size(), 1u);
    EXPECT_EQ(request->platforms[0].name, "ku115");
    EXPECT_EQ(request->search.pu_candidates, (std::vector<int>{2, 4}));
    EXPECT_EQ(request->search.max_segments, 6);
    EXPECT_EQ(request->search.mip_node_budget, 256);
}

TEST(ServeProtocolTest, ParsesEveryControlMethod)
{
    const struct
    {
        const char* name;
        Method method;
    } cases[] = {{"ping", Method::kPing},
                 {"stats", Method::kStats},
                 {"save_cache", Method::kSaveCache},
                 {"shutdown", Method::kShutdown}};
    for (const auto& c : cases) {
        StatusOr<Request> request =
            ParseRequestOr(std::string("{\"method\":\"") + c.name + "\"}");
        ASSERT_TRUE(request.ok()) << c.name;
        EXPECT_EQ(request->method, c.method);
    }
}

TEST(ServeProtocolTest, RejectsMalformedRequests)
{
    const char* cases[] = {
        "",                                       // empty
        "not json",                               // syntax
        "[1,2,3]",                                // not an object
        "{\"method\":\"fly\"}",                   // unknown method
        "{\"method\":\"codesign\"}",              // no model
        "{\"method\":\"codesign\",\"model\":\"servenet9000\","
        "\"platform\":\"eyeriss\"}",              // unknown zoo model
        "{\"method\":\"codesign\",\"model\":\"alexnet\"}",  // no platform
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"platform\":\"tpu9000\"}",              // unknown platform
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"platform\":\"eyeriss\",\"goal\":\"area\"}",      // bad goal
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"platform\":\"eyeriss\",\"budget\":{\"mip_node_budget\":0}}",
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"platform\":\"eyeriss\",\"search\":{\"pus\":[]}}",
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"platform\":\"eyeriss\",\"search\":{\"max_segments\":0}}",
        "{\"method\":\"codesign\",\"model\":\"alexnet\","
        "\"model_json\":{},\"platform\":\"eyeriss\"}",      // both model forms
    };
    for (const char* text : cases) {
        StatusOr<Request> request = ParseRequestOr(text);
        ASSERT_FALSE(request.ok()) << text;
        EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
            << text;
    }
}

TEST(ServeProtocolTest, RejectsOversizedRequests)
{
    std::string big = "{\"method\":\"ping\",\"id\":\"";
    big.append(kMaxRequestBytes, 'x');
    big += "\"}";
    StatusOr<Request> request = ParseRequestOr(big);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RejectsTooManyPlatforms)
{
    json::Value req = CodesignRequest("r1", /*platform=*/"");
    json::Array platforms;
    for (size_t i = 0; i < kMaxPlatforms + 1; ++i)
        platforms.push_back(json::Value(std::string("eyeriss")));
    req["platforms"] = json::Value(std::move(platforms));
    StatusOr<Request> request = ParseRequestOr(req.Dump());
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RejectsPlatformAndPlatformsTogether)
{
    json::Value req = CodesignRequest("r1", "eyeriss");
    json::Array platforms;
    platforms.push_back(json::Value(std::string("nvdla_small")));
    req["platforms"] = json::Value(std::move(platforms));
    StatusOr<Request> request = ParseRequestOr(req.Dump());
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, SyntaxErrorsCarryTheByteOffset)
{
    StatusOr<Request> request = ParseRequestOr("{\"method\": ping}");
    ASSERT_FALSE(request.ok());
    EXPECT_NE(request.status().message().find("at byte"), std::string::npos);
}

// ---- Session semantics the daemon depends on. ----

TEST(ServeSessionTest, FingerprintSeparatesStructurallyDifferentModels)
{
    nn::Workload a = TinyWorkload();
    nn::Workload b = TinyWorkload();
    EXPECT_EQ(autoseg::Session::WorkloadFingerprint(a),
              autoseg::Session::WorkloadFingerprint(b));
    b.layers[0].cout += 1;  // same name, different structure
    EXPECT_NE(autoseg::Session::WorkloadFingerprint(a),
              autoseg::Session::WorkloadFingerprint(b));
}

TEST(ServeSessionTest, SharedCacheReplayIsBitwiseIdentical)
{
    const nn::Workload w = TinyWorkload();
    cost::CostModel cost_model;
    autoseg::Session session(cost_model);
    const hw::Platform platform = hw::EyerissBudget();

    const autoseg::CoDesignResult cold = session.RunShared(
        w, platform, alloc::DesignGoal::kLatency, FastSearch());
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(session.outcome_cache().Hits(), 0);
    EXPECT_GT(session.outcome_cache().Inserts(), 0);

    const autoseg::CoDesignResult warm = session.RunShared(
        w, platform, alloc::DesignGoal::kLatency, FastSearch());
    EXPECT_GT(session.outcome_cache().Hits(), 0);
    EXPECT_EQ(ResultToJson(w, platform, alloc::DesignGoal::kLatency, cold)
                  .Dump(),
              ResultToJson(w, platform, alloc::DesignGoal::kLatency, warm)
                  .Dump());
}

TEST(ServeSessionTest, UncachedRunMatchesEngine)
{
    const nn::Workload w = TinyWorkload();
    const hw::Platform platform = hw::EyerissBudget();

    cost::CostModel cm_session;
    autoseg::Session session(cm_session);
    const autoseg::CoDesignResult via_session = session.Run(
        w, platform, alloc::DesignGoal::kLatency, FastSearch());

    cost::CostModel cm_engine;
    autoseg::Engine engine(cm_engine, FastSearch());
    const autoseg::CoDesignResult via_engine =
        engine.Run(w, platform, alloc::DesignGoal::kLatency);

    EXPECT_EQ(
        ResultToJson(w, platform, alloc::DesignGoal::kLatency, via_session)
            .Dump(),
        ResultToJson(w, platform, alloc::DesignGoal::kLatency, via_engine)
            .Dump());
}

// ---- Server lifecycle over a real socket. ----

TEST(ServeServerTest, LifecycleServesPingAndCodesign)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    ASSERT_GT(server.port(), 0);

    Client client;
    ASSERT_TRUE(client.Connect(server.port()).ok());

    json::Value ping;
    ping["method"] = "ping";
    ping["id"] = "p1";
    StatusOr<json::Value> pong = client.Call(ping);
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("ok", false));
    EXPECT_TRUE(pong->GetBool("pong", false));
    EXPECT_EQ(pong->GetString("id", ""), "p1");

    StatusOr<json::Value> response = client.Call(CodesignRequest("r1"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->GetBool("ok", false));
    ASSERT_TRUE(response->Has("results"));
    ASSERT_EQ(response->At("results").size(), 1u);
    const json::Value& entry = response->At("results")[0];
    EXPECT_TRUE(entry.GetBool("ok", false));
    EXPECT_EQ(entry.GetString("platform", ""), "eyeriss");
    EXPECT_GT(entry.GetDouble("latency_seconds", 0.0), 0.0);
    EXPECT_TRUE(entry.Has("design"));

    client.Close();
    server.Stop();
}

TEST(ServeServerTest, ServedAnswerIsBitwiseIdenticalToEngine)
{
    // The served path: socket, protocol, scheduler, shared session.
    cost::CostModel cm_served;
    Server server(cm_served, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<json::Value> response = client.Call(CodesignRequest("gold"));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->GetBool("ok", false));
    const std::string served = response->At("results")[0].Dump();
    client.Close();
    server.Stop();

    // The offline path: exactly what autoseg_cli runs.
    const nn::Workload w = TinyWorkload();
    const hw::Platform platform = hw::EyerissBudget();
    cost::CostModel cm_direct;
    autoseg::Engine engine(cm_direct, FastSearch());
    const autoseg::CoDesignResult direct =
        engine.Run(w, platform, alloc::DesignGoal::kLatency);
    const std::string offline =
        ResultToJson(w, platform, alloc::DesignGoal::kLatency, direct).Dump();

    EXPECT_EQ(served, offline);
}

TEST(ServeServerTest, PlatformSweepSharesOneSession)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());

    json::Value req = CodesignRequest("sweep", /*platform=*/"");
    json::Array platforms;
    platforms.push_back(json::Value(std::string("eyeriss")));
    platforms.push_back(json::Value(std::string("nvdla_small")));
    req["platforms"] = json::Value(std::move(platforms));

    const json::Value response = server.HandleRequestLine(req.Dump());
    ASSERT_TRUE(response.GetBool("ok", false));
    ASSERT_EQ(response.At("results").size(), 2u);
    EXPECT_EQ(response.At("results")[0].GetString("platform", ""), "eyeriss");
    EXPECT_EQ(response.At("results")[1].GetString("platform", ""),
              "nvdla_small");
    // The sweep's second platform replays the first one's segmentation
    // outcomes from the shared cache.
    EXPECT_GT(server.session().outcome_cache().Hits(), 0);
    server.Stop();
}

TEST(ServeServerTest, StatsReportServiceTelemetry)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    (void)server.HandleRequestLine(CodesignRequest("s1").Dump());

    const json::Value response =
        server.HandleRequestLine("{\"method\":\"stats\",\"id\":\"st\"}");
    ASSERT_TRUE(response.GetBool("ok", false));
    ASSERT_TRUE(response.Has("stats"));
    const json::Value& stats = response.At("stats");
    EXPECT_TRUE(stats.Has("serve.requests"));
    EXPECT_TRUE(stats.Has("serve.request_ns"));
    EXPECT_TRUE(stats.Has("eval.outcome_cache.hit_rate"));
    EXPECT_TRUE(stats.Has("cost.memo.hit_rate"));
    ASSERT_TRUE(response.Has("request_latency"));
    EXPECT_GE(response.At("request_latency").GetInt("count", 0), 1);
    server.Stop();
}

TEST(ServeServerTest, ShutdownRequestFlagsTheServer)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    EXPECT_FALSE(server.ShutdownRequested());
    const json::Value response =
        server.HandleRequestLine("{\"method\":\"shutdown\"}");
    EXPECT_TRUE(response.GetBool("ok", false));
    EXPECT_TRUE(server.ShutdownRequested());
    server.WaitForShutdownRequest();  // returns immediately now
    server.Stop();
}

TEST(ServeServerTest, MalformedLinesGetStructuredErrorsNotHangs)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    StatusOr<json::Value> response = client.CallRaw("this is not json");
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->GetBool("ok", true));
    EXPECT_EQ(response->GetString("code", ""), "INVALID_ARGUMENT");
    client.Close();
    server.Stop();
}

TEST(ServeServerTest, IdleConnectionsAreReapedNotLeaked)
{
    cost::CostModel cost_model;
    ServerOptions options;
    options.idle_timeout_ms = 100;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect(server.port()).ok());

    // Say nothing past the timeout: the server announces the reap and
    // closes. Depending on when the client reads, it sees either the
    // DEADLINE_EXCEEDED notice or the closed connection — never a hang.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    json::Value ping;
    ping["method"] = std::string("ping");
    StatusOr<json::Value> late = client.Call(ping);
    if (late.ok()) {
        EXPECT_FALSE(late->GetBool("ok", true));
        EXPECT_EQ(late->GetString("code", ""), "DEADLINE_EXCEEDED");
    } else {
        EXPECT_EQ(late.status().code(), StatusCode::kIoError);
    }
    client.Close();

    // A fresh connection that speaks promptly is served normally.
    Client fresh;
    ASSERT_TRUE(fresh.Connect(server.port()).ok());
    StatusOr<json::Value> pong = fresh.Call(ping);
    ASSERT_TRUE(pong.ok());
    EXPECT_TRUE(pong->GetBool("ok", false));
    fresh.Close();
    server.Stop();
}

// ---- Warm-cache persistence across a simulated restart. ----

TEST(WarmCachePersistenceTest, RestartAnswersRepeatRequestFromWarmCaches)
{
    const std::string path =
        testing::TempDir() + "spa_warm_roundtrip.json";
    std::remove(path.c_str());

    ServerOptions options;
    options.warm_cache_path = path;

    std::string cold_results;
    {
        cost::CostModel cost_model;
        Server server(cost_model, options);
        ASSERT_TRUE(server.Start().ok());
        EXPECT_FALSE(server.started_warm());
        const json::Value response =
            server.HandleRequestLine(CodesignRequest("cold").Dump());
        ASSERT_TRUE(response.GetBool("ok", false));
        cold_results = response.At("results").Dump();
        EXPECT_EQ(server.session().outcome_cache().Hits(), 0);
        server.Stop();  // persists the warm cache
    }

    {
        cost::CostModel cost_model;
        Server server(cost_model, options);
        ASSERT_TRUE(server.Start().ok());
        EXPECT_TRUE(server.started_warm());
        EXPECT_GT(server.session().outcome_cache().Size(), 0u);
        // The cost-model memo came back too.
        EXPECT_FALSE(
            server.session().evaluator().cost_model().MemoSnapshot().empty());

        const json::Value response =
            server.HandleRequestLine(CodesignRequest("warm").Dump());
        ASSERT_TRUE(response.GetBool("ok", false));
        // The repeat request hit the restored outcome cache and the
        // restored compute-cycle memo...
        EXPECT_GT(server.session().outcome_cache().Hits(), 0);
        EXPECT_GT(server.session().evaluator().cost_model().MemoHits(), 0);
        // ...and produced the byte-identical answer.
        EXPECT_EQ(response.At("results").Dump(), cold_results);
        server.Stop();
    }
    std::remove(path.c_str());
}

TEST(WarmCachePersistenceTest, SaveCacheMethodPersistsWithoutStopping)
{
    const std::string path = testing::TempDir() + "spa_warm_live.json";
    std::remove(path.c_str());
    ServerOptions options;
    options.warm_cache_path = path;
    cost::CostModel cost_model;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());
    (void)server.HandleRequestLine(CodesignRequest("w1").Dump());
    const json::Value response =
        server.HandleRequestLine("{\"method\":\"save_cache\"}");
    ASSERT_TRUE(response.GetBool("ok", false));
    StatusOr<json::Value> saved = json::LoadFileOr(path);
    ASSERT_TRUE(saved.ok());
    EXPECT_EQ(saved->GetString("format", ""), "spa.autoseg.warmcache.v2");
    EXPECT_GT(saved->At("outcomes").size(), 0u);
    EXPECT_GT(saved->At("cost_memo").size(), 0u);
    server.Stop();
    std::remove(path.c_str());
}

TEST(WarmCachePersistenceTest, TornWarmCacheFileStartsColdNotCrashed)
{
    const std::string path = testing::TempDir() + "spa_warm_torn.json";
    {
        // A truncated artifact, as a crash mid-write would leave
        // without the atomic rename (SaveFileOr makes this unreachable
        // in practice; the daemon must still survive a corrupt disk).
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"format\": \"spa.autoseg.warmcache.v1\", \"outc", f);
        std::fclose(f);
    }
    ServerOptions options;
    options.warm_cache_path = path;
    cost::CostModel cost_model;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_FALSE(server.started_warm());
    EXPECT_EQ(server.session().outcome_cache().Size(), 0u);
    // Still fully serviceable.
    const json::Value response =
        server.HandleRequestLine(CodesignRequest("t1").Dump());
    EXPECT_TRUE(response.GetBool("ok", false));
    server.Stop();
    std::remove(path.c_str());
}

TEST(WarmCachePersistenceTest, StaleFormatTagStartsColdNotCrashed)
{
    // A complete, well-formed cache carrying the pre-op-registry v1 tag:
    // its memo entries lack the per-layer pass count, so replaying it
    // could silently change costs. The daemon must discard it and solve
    // cold instead.
    const std::string path = testing::TempDir() + "spa_warm_stale.json";
    {
        json::Value cache;
        cache["format"] = "spa.autoseg.warmcache.v1";
        cache["outcomes"] = json::Value(json::Array{});
        cache["cost_memo"] = json::Value(json::Array{});
        ASSERT_TRUE(json::SaveFileOr(path, cache).ok());
    }
    ServerOptions options;
    options.warm_cache_path = path;
    cost::CostModel cost_model;
    Server server(cost_model, options);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_FALSE(server.started_warm());
    const json::Value response =
        server.HandleRequestLine(CodesignRequest("v1").Dump());
    EXPECT_TRUE(response.GetBool("ok", false));
    server.Stop();
    std::remove(path.c_str());
}

// ---- Transformer workloads through the served path. ----

/** A codesign request for the BERT-base-class zoo model, with a search
 * small enough for a unit test. */
json::Value
BertRequest(const std::string& id)
{
    json::Value req;
    req["id"] = id;
    req["method"] = "codesign";
    req["model_json"] = nn::GraphToJson(nn::BuildBertBase());
    req["platform"] = "nvdla_small";
    json::Value search;
    json::Array pus;
    pus.push_back(json::Value(2));
    search["pus"] = json::Value(std::move(pus));
    search["max_segments"] = 2;
    req["search"] = std::move(search);
    return req;
}

TEST(ServeTransformerTest, WarmBertRepeatIsBitwiseIdenticalToCold)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());

    const json::Value cold = server.HandleRequestLine(BertRequest("cold").Dump());
    ASSERT_TRUE(cold.GetBool("ok", false)) << cold.Dump();
    ASSERT_TRUE(cold.At("results")[0].GetBool("ok", false));
    const int64_t cold_hits = server.session().outcome_cache().Hits();

    const json::Value warm = server.HandleRequestLine(BertRequest("warm").Dump());
    ASSERT_TRUE(warm.GetBool("ok", false));
    // The repeat was answered from the session caches (the attention /
    // matmul / layernorm descriptors fingerprint identically)...
    EXPECT_GT(server.session().outcome_cache().Hits(), cold_hits);
    // ...and byte-for-byte matches the cold answer.
    EXPECT_EQ(warm.At("results").Dump(), cold.At("results").Dump());
    server.Stop();
}

// ---- Fault injection through the request path. ----

#ifdef SPA_FAULT_INJECTION

class ServeFaultSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::DisarmAll();
        fault::SetEnabled(true);
    }

    void
    TearDown() override
    {
        fault::SetEnabled(false);
        fault::DisarmAll();
    }
};

TEST_F(ServeFaultSweepTest, ParseFaultBecomesStructuredResponse)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    fault::Arm("serve.request.parse", /*seed=*/1, /*period=*/1);
    json::Value response = server.HandleRequestLine(CodesignRequest("f1").Dump());
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_EQ(response.GetString("code", ""), "FAULT_INJECTED");
    fault::DisarmAll();
    // The server survives and serves the next request normally.
    response = server.HandleRequestLine(CodesignRequest("f2").Dump());
    EXPECT_TRUE(response.GetBool("ok", false));
    server.Stop();
}

TEST_F(ServeFaultSweepTest, RunFaultBecomesStructuredResponse)
{
    cost::CostModel cost_model;
    Server server(cost_model, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    fault::Arm("serve.request.run", /*seed=*/1, /*period=*/1);
    const json::Value response =
        server.HandleRequestLine(CodesignRequest("f3").Dump());
    EXPECT_FALSE(response.GetBool("ok", true));
    EXPECT_EQ(response.GetString("code", ""), "FAULT_INJECTED");
    server.Stop();
}

TEST_F(ServeFaultSweepTest, EveryServeSiteDegradesCleanly)
{
    for (const std::string& site : fault::KnownSites()) {
        if (site.rfind("serve.", 0) != 0)
            continue;
        fault::DisarmAll();
        fault::Arm(site, /*seed=*/7, /*period=*/1);
        cost::CostModel cost_model;
        ServerOptions options;
        options.warm_cache_path = testing::TempDir() + "spa_warm_fault.json";
        Server server(cost_model, options);
        // Neither startup (warm-cache load) nor a request may crash.
        ASSERT_TRUE(server.Start().ok()) << site;
        const json::Value response =
            server.HandleRequestLine(CodesignRequest("fs").Dump());
        EXPECT_TRUE(response.IsObject()) << site;
        server.Stop();
        std::remove(options.warm_cache_path.c_str());
    }
}

#endif  // SPA_FAULT_INJECTION

// ---- Deterministic request fuzz (the parser never crashes). ----

TEST(ServeRobustnessTest, MutatedRequestsNeverCrashTheParser)
{
    const std::string base = CodesignRequest("fz").Dump();
    uint64_t state = 0x9e3779b97f4a7c15ULL;
    auto next = [&state]() {
        // splitmix64: deterministic across platforms and runs.
        state += 0x9e3779b97f4a7c15ULL;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    for (int round = 0; round < 300; ++round) {
        std::string mutated = base;
        const int edits = 1 + static_cast<int>(next() % 4);
        for (int e = 0; e < edits; ++e) {
            const size_t pos = next() % mutated.size();
            switch (next() % 3) {
            case 0:
                mutated[pos] = static_cast<char>(next() % 256);
                break;
            case 1:
                mutated.erase(pos, 1 + next() % 8);
                break;
            default:
                mutated.insert(pos, 1, static_cast<char>(next() % 256));
                break;
            }
            if (mutated.empty())
                break;
        }
        StatusOr<Request> request = ParseRequestOr(mutated);
        if (!request.ok()) {
            EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
                << "round " << round;
        }
    }
}

}  // namespace
}  // namespace serve
}  // namespace spa
