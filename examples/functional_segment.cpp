// Functional segment execution: drives real int8 tensors through the
// cycle-level systolic PUs in their assigned dataflows, routes the
// inter-PU traffic on the Benes fabric, and verifies the result
// bit-for-bit against the golden reference — the "does the generated
// hardware actually compute the network" demonstration.
//
//   ./build/examples/functional_segment

#include <cstdio>

#include "pipe/sim.h"
#include "pu/reference.h"
#include "seg/segmenter.h"

using namespace spa;

int
main()
{
    // A fire-module-like branchy segment across three PUs.
    nn::Graph graph("fire_segment");
    nn::LayerId in = graph.AddInput("input", {8, 20, 20});
    nn::LayerId squeeze = graph.AddConv("squeeze", in, 8, 1, 1, 0);
    nn::LayerId e1 = graph.AddConv("expand1", squeeze, 8, 1, 1, 0);
    nn::LayerId e3 = graph.AddConv("expand3", squeeze, 8, 3, 1, 1);
    nn::LayerId cat = graph.AddConcat("cat", {e1, e3});
    graph.AddConv("post", cat, 8, 3, 1, 1);
    nn::Workload workload = nn::ExtractWorkload(graph);

    seg::Assignment assignment;
    assignment.num_segments = 1;
    assignment.num_pus = 3;
    assignment.segment_of = {0, 0, 0, 0};
    assignment.pu_of = {0, 1, 1, 2};
    std::printf("constraint check: %s\n",
                seg::CheckConstraints(workload, assignment).empty() ? "valid"
                                                                    : "INVALID");

    hw::SpaConfig config;
    config.pus = {hw::PuConfig{8, 8, 8192, 8192}, hw::PuConfig{8, 8, 8192, 8192},
                  hw::PuConfig{8, 8, 8192, 8192}};
    std::vector<hw::Dataflow> dataflow = {hw::Dataflow::kWeightStationary,
                                          hw::Dataflow::kOutputStationary,
                                          hw::Dataflow::kWeightStationary};

    // Route the segment traffic on a 3-port Benes fabric.
    noc::BenesNetwork fabric(3);
    auto functional = pipe::RunSegmentFunctional(graph, workload, assignment, 0,
                                                 config, dataflow, fabric, 2024);
    if (!functional.ok) {
        std::printf("functional run failed: %s\n", functional.error.c_str());
        return 1;
    }
    // Reference: same seed, but no layer executes on a PU (segment 1).
    auto reference = pipe::RunSegmentFunctional(graph, workload, assignment, 1,
                                                config, dataflow, fabric, 2024);
    bool all_match = true;
    for (size_t l = 0; l < workload.layers.size(); ++l) {
        const bool match = functional.outputs[l] == reference.outputs[l];
        std::printf("layer %-10s : %s\n", workload.layers[l].name.c_str(),
                    match ? "bit-exact" : "MISMATCH");
        all_match &= match;
    }

    // Cycle-level pipeline view of the same segment.
    cost::CostModel cost_model;
    pipe::SegmentSimulator sim(cost_model);
    auto timing = sim.Simulate(workload, assignment, 0, config, dataflow);
    std::printf("\npiece-based pipeline: %lld cycles, %lld pieces, "
                "efficiency %.1f%%\n",
                static_cast<long long>(timing.total_cycles),
                static_cast<long long>(timing.pieces_executed),
                100.0 * timing.PipelineEfficiency());
    for (size_t n = 0; n < timing.pu_busy_cycles.size(); ++n)
        std::printf("  PU%zu: busy %lld, stalled %lld\n", n + 1,
                    static_cast<long long>(timing.pu_busy_cycles[n]),
                    static_cast<long long>(timing.pu_stall_cycles[n]));
    return all_match ? 0 : 1;
}
