// Edge-vision scenario: deploy MobileNetV2 on the small Ultra96 FPGA
// (ZU3EG) for a camera pipeline. Shows the FPGA resource accounting
// (DSP packing, BRAM quantization), the throughput-goal batching, and
// a comparison against the layerwise overlay the board would otherwise
// run.
//
//   ./build/examples/edge_vision

#include <cstdio>

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "nn/models.h"

using namespace spa;

int
main()
{
    nn::Workload workload = nn::ExtractWorkload(nn::BuildMobileNetV2());
    const hw::Platform board = hw::Zu3egBudget();
    std::printf("deploying %s on %s (%ld DSPs, %ld BRAM36, %.1f GB/s)\n",
                workload.name.c_str(), board.name.c_str(),
                static_cast<long>(board.dsps),
                static_cast<long>(board.onchip_bytes / hw::kBytesPerBram36),
                board.bandwidth_gbps);

    cost::CostModel cost_model;
    autoseg::Engine engine(cost_model);

    // Camera pipelines care about frames per second: throughput goal.
    auto spa = engine.Run(workload, board, alloc::DesignGoal::kThroughput);
    if (!spa.ok) {
        std::printf("no feasible design\n");
        return 1;
    }
    const auto usage = hw::FpgaResourceUsage(spa.alloc.config);
    const double gops = spa.alloc.throughput_fps *
                        static_cast<double>(workload.TotalOps()) * 2.0 / 1e9;
    std::printf("\nSPA design: %d segments x %d PUs, batch %ld\n",
                spa.assignment.num_segments, spa.assignment.num_pus,
                static_cast<long>(spa.alloc.config.batch));
    std::printf("resources: %ld DSPs (%.0f%%), %ld BRAM36\n",
                static_cast<long>(usage.dsps),
                100.0 * static_cast<double>(usage.dsps) / board.dsps,
                static_cast<long>(usage.bram36));
    std::printf("throughput: %.1f fps (%.0f GOP/s, DSP efficiency %.0f%%)\n",
                spa.alloc.throughput_fps, gops,
                100.0 * gops / (static_cast<double>(usage.dsps) * board.freq_ghz * 4.0));

    // What a generic layerwise overlay would deliver on the same board.
    baselines::NoPipelineModel overlay(cost_model);
    auto base = overlay.Evaluate(workload, board);
    std::printf("\nlayerwise overlay on the same board: %.1f fps\n",
                base.throughput_fps);
    std::printf("SPA speedup: %.2fx\n",
                spa.alloc.throughput_fps / base.throughput_fps);
    return 0;
}
