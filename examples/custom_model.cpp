// Custom-model frontend: describe a DNN in the JSON format (the
// "high-level DNN description" input of Fig. 6), load it, and run the
// whole AutoSeg flow on it -- the path a user with their own network
// takes. Also dumps the design record as JSON for downstream tooling.
//
//   ./build/examples/custom_model [model.json]

#include <cstdio>

#include "autoseg/autoseg.h"
#include "json/json.h"
#include "nn/loader.h"

using namespace spa;

namespace {

// A small detector backbone with a residual block and a two-branch
// head, written in the JSON frontend format.
const char* kModelJson = R"({
  "name": "tiny_detector",
  "input": {"c": 3, "h": 96, "w": 96},
  "layers": [
    {"name": "stem",   "type": "conv", "out": 16, "k": 3, "stride": 2, "pad": 1},
    {"name": "c1",     "type": "conv", "out": 32, "k": 3, "stride": 2, "pad": 1},
    {"name": "b1a",    "type": "conv", "out": 32, "k": 3, "pad": 1},
    {"name": "b1b",    "type": "conv", "out": 32, "k": 3, "pad": 1, "inputs": ["b1a"]},
    {"name": "res",    "type": "add",  "inputs": ["b1b", "c1"]},
    {"name": "down",   "type": "conv", "out": 64, "k": 3, "stride": 2, "pad": 1,
     "inputs": ["res"]},
    {"name": "head1",  "type": "conv", "out": 32, "k": 1, "pad": 0},
    {"name": "head3",  "type": "conv", "out": 32, "k": 3, "pad": 1, "inputs": ["down"]},
    {"name": "fuse",   "type": "concat", "inputs": ["head1", "head3"]},
    {"name": "boxes",  "type": "conv", "out": 24, "k": 1, "pad": 0, "inputs": ["fuse"]}
  ]
})";

}  // namespace

int
main(int argc, char** argv)
{
    nn::Graph graph = argc > 1 ? nn::LoadGraph(argv[1])
                               : nn::GraphFromJson(json::ParseOrDie(kModelJson));
    nn::Workload workload = nn::ExtractWorkload(graph);
    std::printf("loaded '%s': %d compute layers, %.1f MMACs, %.1f KB weights\n",
                workload.name.c_str(), workload.NumLayers(),
                static_cast<double>(workload.TotalOps()) / 1e6,
                static_cast<double>(workload.TotalWeightBytes()) / 1024.0);

    cost::CostModel cost_model;
    autoseg::Engine engine(cost_model);
    auto result = engine.Run(workload, hw::NvdlaSmallBudget(),
                             alloc::DesignGoal::kLatency);
    if (!result.ok) {
        std::printf("no feasible design\n");
        return 1;
    }
    std::printf("design: %d segments x %d PUs, latency %.3f ms\n",
                result.assignment.num_segments, result.assignment.num_pus,
                result.alloc.latency_seconds * 1e3);

    // Dump a machine-readable design record.
    json::Value record;
    record["model"] = workload.name;
    record["segments"] = result.assignment.num_segments;
    record["pus"] = result.assignment.num_pus;
    record["latency_ms"] = result.alloc.latency_seconds * 1e3;
    json::Array pus;
    for (const auto& pu : result.alloc.config.pus) {
        json::Value jp;
        jp["rows"] = pu.rows;
        jp["cols"] = pu.cols;
        jp["act_buffer_bytes"] = pu.act_buffer_bytes;
        jp["weight_buffer_bytes"] = pu.weight_buffer_bytes;
        pus.push_back(jp);
    }
    record["hardware"] = json::Value(std::move(pus));
    json::Array binding;
    for (int l = 0; l < workload.NumLayers(); ++l) {
        json::Value jb;
        jb["layer"] = workload.layers[static_cast<size_t>(l)].name;
        jb["segment"] = result.assignment.segment_of[static_cast<size_t>(l)];
        jb["pu"] = result.assignment.pu_of[static_cast<size_t>(l)];
        binding.push_back(jb);
    }
    record["binding"] = json::Value(std::move(binding));
    std::printf("\ndesign record:\n%s\n", record.Pretty().c_str());
    return 0;
}
