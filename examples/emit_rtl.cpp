// RTL emission: run the full AutoSeg flow on a model, then render the
// generated accelerator as SystemVerilog -- the "DeepBurning" output a
// hardware team would take into a synthesis flow. Writes the bundle to
// ./spa_rtl_out (or the directory given as argv[1]).
//
//   ./build/examples/emit_rtl [output_dir]

#include <cstdio>
#include <map>

#include "autoseg/autoseg.h"
#include "nn/models.h"
#include "rtl/emit.h"

using namespace spa;

int
main(int argc, char** argv)
{
    const std::string out_dir = argc > 1 ? argv[1] : "spa_rtl_out";

    nn::Workload workload = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    autoseg::Engine engine(cost_model);
    auto design = engine.Run(workload, hw::Zc7045Budget(),
                             alloc::DesignGoal::kLatency);
    if (!design.ok) {
        std::printf("no feasible design\n");
        return 1;
    }
    std::printf("designed %d segments x %d PUs for %s\n",
                design.assignment.num_segments, design.assignment.num_pus,
                workload.name.c_str());

    // Route each segment's inter-PU pattern; the union drives pruning.
    noc::BenesNetwork fabric(std::max(2, design.assignment.num_pus));
    std::vector<noc::BenesConfig> segment_configs;
    for (int s = 0; s < design.assignment.num_segments; ++s) {
        std::map<int, std::vector<int>> fanout;
        for (const auto& comm : seg::SegmentComms(workload, design.assignment, s))
            fanout[comm.src_pu].push_back(comm.dst_pu);
        std::vector<noc::RouteRequest> requests;
        for (auto& [src, dsts] : fanout)
            requests.push_back({src, dsts});
        noc::BenesConfig cfg;
        if (!requests.empty() && fabric.Route(requests, cfg))
            segment_configs.push_back(cfg);
    }
    const auto prune = fabric.Prune(segment_configs);
    std::printf("fabric: %d/%d Benes nodes kept after pruning\n", prune.used_nodes,
                prune.total_nodes);

    rtl::RtlBundle bundle =
        rtl::GenerateRtl(design.alloc.config, design.assignment.num_segments,
                         fabric, segment_configs);
    rtl::WriteBundle(bundle, out_dir);
    std::printf("wrote %zu SystemVerilog files (%lld lines) to %s/\n",
                bundle.files.size(), static_cast<long long>(bundle.TotalLines()),
                out_dir.c_str());
    for (const auto& f : bundle.files)
        std::printf("  %s\n", f.name.c_str());
    return 0;
}
