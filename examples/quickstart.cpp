// Quickstart: generate a SPA accelerator for SqueezeNet under the
// Eyeriss-class resource budget and print everything AutoSeg decided --
// the segmentation, the per-PU hardware, the dataflow schedule and the
// predicted performance.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "autoseg/autoseg.h"
#include "autoseg/energy.h"
#include "nn/models.h"

using namespace spa;

int
main()
{
    // 1. Pick a workload from the model zoo (or load your own JSON
    //    description with nn::LoadGraph).
    nn::Graph graph = nn::BuildSqueezeNet();
    nn::Workload workload = nn::ExtractWorkload(graph);
    std::printf("workload: %s, %d compute layers, %.2f GMACs\n",
                workload.name.c_str(), workload.NumLayers(),
                static_cast<double>(workload.TotalOps()) / 1e9);

    // 2. Pick a resource budget (Table II) and a design goal.
    const hw::Platform budget = hw::EyerissBudget();
    std::printf("budget: %s (%ld PEs, %ld KB on-chip, %.1f GB/s)\n",
                budget.name.c_str(), static_cast<long>(budget.pes),
                static_cast<long>(budget.onchip_bytes / 1024),
                budget.bandwidth_gbps);

    // 3. Run the co-design engine.
    cost::CostModel cost_model;
    autoseg::Engine engine(cost_model);
    autoseg::CoDesignResult result =
        engine.Run(workload, budget, alloc::DesignGoal::kLatency);
    if (!result.ok) {
        std::printf("no feasible SPA design found\n");
        return 1;
    }

    // 4. Inspect the decision.
    std::printf("\nchosen: %d segments x %d PUs\n", result.assignment.num_segments,
                result.assignment.num_pus);
    std::printf("hardware: %s\n", result.alloc.config.ToString().c_str());
    std::printf("min segment CTC: %.1f OPs/B, SOD: %.3f\n", result.metrics.min_ctc,
                result.metrics.sod);
    for (int s = 0; s < result.assignment.num_segments; ++s) {
        std::printf("segment %d:", s + 1);
        for (int n = 0; n < result.assignment.num_pus; ++n) {
            std::printf("  PU%d(%s):", n + 1,
                        hw::DataflowName(result.alloc.segments[static_cast<size_t>(s)]
                                             .dataflow[static_cast<size_t>(n)]));
            for (int l = 0; l < workload.NumLayers(); ++l) {
                if (result.assignment.segment_of[static_cast<size_t>(l)] == s &&
                    result.assignment.pu_of[static_cast<size_t>(l)] == n) {
                    std::printf(" %s", workload.layers[static_cast<size_t>(l)].name.c_str());
                }
            }
        }
        std::printf("\n");
    }

    // 5. Predicted performance and energy.
    std::printf("\nlatency: %.3f ms  (%.1f fps)\n",
                result.alloc.latency_seconds * 1e3, result.alloc.throughput_fps);
    std::printf("PE utilization: %.1f%%\n", 100.0 * result.alloc.pe_utilization);
    auto energy = autoseg::EvaluateSpaEnergy(cost_model, workload, result.assignment,
                                             result.alloc);
    std::printf("energy: %.2f mJ (DRAM %.2f, buffers %.2f, MACs %.2f, other %.2f)\n",
                energy.TotalPj() / 1e9, energy.dram_pj / 1e9, energy.buffer_pj / 1e9,
                energy.mac_pj / 1e9, energy.other_pj / 1e9);
    return 0;
}
