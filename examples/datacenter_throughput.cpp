// Datacenter scenario: batch-serving ResNet-50 on the large KU115
// FPGA. Shows the throughput-goal flow (pipeline replication), the
// generality of one SPA design across a model family (ResNet-18/50),
// and the scalability wall that rules out a per-layer full pipeline.
//
//   ./build/examples/datacenter_throughput

#include <cstdio>

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "nn/models.h"

using namespace spa;

int
main()
{
    const hw::Platform board = hw::Ku115Budget();
    cost::CostModel cost_model;
    autoseg::Engine engine(cost_model);

    nn::Workload resnet50 = nn::ExtractWorkload(nn::BuildResNet50());
    auto spa = engine.Run(resnet50, board, alloc::DesignGoal::kThroughput);
    if (!spa.ok) {
        std::printf("no feasible design\n");
        return 1;
    }
    const auto usage = hw::FpgaResourceUsage(spa.alloc.config);
    std::printf("ResNet-50 on %s: %d segments x %d PUs, batch %ld\n",
                board.name.c_str(), spa.assignment.num_segments,
                spa.assignment.num_pus, static_cast<long>(spa.alloc.config.batch));
    std::printf("resources: %ld DSPs, %ld BRAM36; throughput %.1f fps\n",
                static_cast<long>(usage.dsps), static_cast<long>(usage.bram36),
                spa.alloc.throughput_fps);

    // A per-layer full pipeline cannot even be provisioned here.
    baselines::FullPipelineModel full(cost_model);
    auto pipe = full.Evaluate(resnet50, board);
    std::printf("\nfull per-layer pipeline (54 PUs): %s\n",
                pipe.ok ? "feasible" : "infeasible at this budget "
                                       "(the Sec. I scalability wall)");

    // The same engine handles the deeper sibling without changes.
    nn::Workload resnet18 = nn::ExtractWorkload(nn::BuildResNet18());
    auto small = engine.Run(resnet18, board, alloc::DesignGoal::kThroughput);
    if (small.ok)
        std::printf("ResNet-18 on the same board: %.1f fps (batch %ld)\n",
                    small.alloc.throughput_fps,
                    static_cast<long>(small.alloc.config.batch));

    // Latency-optimized variant for online serving.
    auto online = engine.Run(resnet50, board, alloc::DesignGoal::kLatency);
    if (online.ok)
        std::printf("\nlatency-goal ResNet-50: %.2f ms per frame (batch 1)\n",
                    online.alloc.latency_seconds * 1e3);
    return 0;
}
