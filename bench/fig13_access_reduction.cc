// Fig. 13: off-chip memory access reduction of the SPA designs over
// the Eyeriss-budget layerwise baseline. Models with fmap-dominated
// footprints (MobileNets, SqueezeNet) reduce the most; weight-heavy
// models (AlexNet, VGG) the least (Amdahl on the weight traffic).

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "nn/models.h"

namespace {

using namespace spa;

void
PrintFig13()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 3, 4, 6};
    autoseg::Engine engine(cost_model, options);
    baselines::NoPipelineModel no_pipe(cost_model);
    autoseg::SegmentationCache cache;
    const hw::Platform budget = hw::EyerissBudget();

    bench::PrintHeader("Fig 13: DRAM access vs Eyeriss-budget baseline");
    bench::PrintRow("model",
                    {"base (MB)", "SPA (MB)", "reduction", "fmap share"});
    for (const std::string& model : nn::ZooModelNames()) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        auto base = no_pipe.Evaluate(w, budget);
        auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
        if (!spa.ok)
            continue;
        int64_t spa_bytes = 0;
        for (int s = 0; s < spa.assignment.num_segments; ++s)
            spa_bytes += seg::SegmentAccessBytes(w, spa.assignment, s);
        int64_t fmap = 0;
        for (const auto& e : w.edges)
            fmap += e.bytes;
        const double share = static_cast<double>(fmap) /
                             static_cast<double>(fmap + w.TotalWeightBytes());
        bench::PrintRow(
            model,
            {bench::Fmt(static_cast<double>(base.dram_bytes) / 1048576.0),
             bench::Fmt(static_cast<double>(spa_bytes) / 1048576.0),
             bench::Fmt(static_cast<double>(base.dram_bytes) /
                        static_cast<double>(spa_bytes)) + "x",
             bench::Fmt(100.0 * share, "%.0f%%")});
    }
    std::printf("(reduction tracks the intermediate-fmap share, Sec. VI-B)\n");
}

void
BM_SegmentAccess(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildMobileNetV1());
    seg::Assignment a = seg::EvenSegmentation(w, 4, 2);
    for (auto _ : state) {
        int64_t total = 0;
        for (int s = 0; s < a.num_segments; ++s)
            total += seg::SegmentAccessBytes(w, a, s);
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_SegmentAccess);

}  // namespace

SPA_BENCH_MAIN(PrintFig13)
