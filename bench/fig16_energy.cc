// Fig. 16: energy breakdown (DRAM / on-chip buffer / MAC / others) of
// the no-pipeline baseline, the fusion-optimized baseline, and the
// AutoSeg SPA design per model, plus the paper's headline efficiency
// ratios (1.65x over baseline, 1.32x over fusion on average) and the
// <3% "others" share of the SPA designs.

#include "autoseg/autoseg.h"
#include "autoseg/energy.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "common/util.h"
#include "nn/models.h"

namespace {

using namespace spa;

void
PrintFig16()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 3, 4, 6};
    autoseg::Engine engine(cost_model, options);
    baselines::NoPipelineModel plain(cost_model);
    baselines::FusedLayerModel fused(cost_model);
    autoseg::SegmentationCache cache;
    const hw::Platform budget = hw::EyerissBudget();

    bench::PrintHeader("Fig 16: energy breakdown (mJ) at the Eyeriss budget");
    bench::PrintRow("model / design",
                    {"DRAM", "buffer", "MAC", "others", "total"});
    std::vector<double> gain_vs_plain, gain_vs_fused;
    for (const std::string& model : nn::ZooModelNames()) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        auto base = plain.Evaluate(w, budget);
        auto fuse = fused.Evaluate(w, budget);
        auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
        if (!spa.ok)
            continue;
        auto spa_energy =
            autoseg::EvaluateSpaEnergy(cost_model, w, spa.assignment, spa.alloc);
        auto print_breakdown = [&](const std::string& label,
                                   const cost::EnergyBreakdown& e) {
            bench::PrintRow(label, {bench::Fmt(e.dram_pj / 1e9, "%.2f"),
                                    bench::Fmt(e.buffer_pj / 1e9, "%.2f"),
                                    bench::Fmt(e.mac_pj / 1e9, "%.2f"),
                                    bench::Fmt(e.other_pj / 1e9, "%.2f"),
                                    bench::Fmt(e.TotalPj() / 1e9, "%.2f")});
        };
        print_breakdown(model + " baseline", base.energy);
        print_breakdown(model + " fusion", fuse.energy);
        print_breakdown(model + " AutoSeg", spa_energy);
        gain_vs_plain.push_back(base.energy.TotalPj() / spa_energy.TotalPj());
        gain_vs_fused.push_back(fuse.energy.TotalPj() / spa_energy.TotalPj());
        std::printf("    others share of AutoSeg total: %.1f%%\n",
                    100.0 * spa_energy.other_pj / spa_energy.TotalPj());
    }
    std::printf("\nenergy efficiency gain geomean: %.2fx vs baseline, %.2fx vs "
                "fusion (paper: 1.65x / 1.32x)\n",
                GeoMean(gain_vs_plain), GeoMean(gain_vs_fused));
}

void
BM_SpaEnergyEvaluation(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    auto spa = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    for (auto _ : state) {
        auto e = autoseg::EvaluateSpaEnergy(cost_model, w, spa.assignment, spa.alloc);
        benchmark::DoNotOptimize(e.dram_pj);
    }
}
BENCHMARK(BM_SpaEnergyEvaluation);

}  // namespace

SPA_BENCH_MAIN(PrintFig16)
