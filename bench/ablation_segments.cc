// Ablation: segment count. Sweeps S for fixed N on two contrasting
// models and reports latency, min CTC and SOD -- showing the paper's
// core trade-off: too few segments lose nothing to DRAM but balance
// poorly; too many re-approach layerwise traffic. The co-design engine
// must pick the knee.

#include "bench/bench_util.h"
#include "eval/evaluator.h"
#include "nn/models.h"
#include "pipe/schedule.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

void
SweepModel(const char* model, int num_pus, const hw::Platform& budget)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model,
                              eval::EvalOptions{bench::Jobs(), true});
    seg::HeuristicSegmenter segmenter;

    bench::PrintHeader(std::string("Segment-count sweep: ") + model + " @ " +
                       budget.name + " (N=" + std::to_string(num_pus) + ")");
    bench::PrintRow("S", {"latency ms", "min CTC", "SOD", "DRAM MB"});
    const int max_s = std::min(16, w.NumLayers() / num_pus);
    for (int s = 1; s <= max_s; s = s < 4 ? s + 1 : s * 2) {
        seg::Assignment a;
        if (!segmenter.Solve(w, s, num_pus, a))
            continue;
        auto result =
            evaluator.EvaluateCandidate(w, a, budget, alloc::DesignGoal::kLatency);
        if (!result.ok())
            continue;
        int64_t dram = 0;
        for (int i = 0; i < s; ++i)
            dram += seg::SegmentAccessBytes(w, a, i);
        bench::PrintRow(std::to_string(s),
                        {bench::Fmt(result.alloc.latency_seconds * 1e3, "%.3f"),
                         bench::Fmt(result.metrics.min_ctc, "%.1f"),
                         bench::Fmt(result.metrics.sod, "%.3f"),
                         bench::Fmt(static_cast<double>(dram) / 1048576.0)});
        bench::SetMetric(std::string(model) + "@" + budget.name + ".S" +
                             std::to_string(s) + ".latency_ms",
                         result.alloc.latency_seconds * 1e3);
    }
}

void
PrintAblation()
{
    SweepModel("squeezenet", 3, hw::NvdlaSmallBudget());
    SweepModel("mobilenet_v1", 2, hw::NvdlaSmallBudget());
    SweepModel("resnet50", 4, hw::NvdlaLargeBudget());
    std::printf("\n(more segments -> more boundary DRAM traffic but tighter\n"
                " per-segment balance; the engine picks the knee per budget)\n");
}

void
BM_SegmentSweepPoint(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model, eval::EvalOptions{1, true});
    seg::HeuristicSegmenter segmenter;
    seg::Assignment a;
    segmenter.Solve(w, static_cast<int>(state.range(0)), 3, a);
    for (auto _ : state) {
        auto r = evaluator.Allocate(w, a, hw::NvdlaSmallBudget(),
                                    alloc::DesignGoal::kLatency);
        benchmark::DoNotOptimize(r.latency_seconds);
    }
}
BENCHMARK(BM_SegmentSweepPoint)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

SPA_BENCH_MAIN(PrintAblation)
