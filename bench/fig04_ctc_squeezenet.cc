// Fig. 4: per-layer CTC of SqueezeNet and the effect of 3-layer /
// 6-layer even segmentations ("segment-grained-1/2"), plus the tuned
// segmentation the AutoSeg segmenter finds.

#include "bench/bench_util.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

void
PrintFig4()
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    bench::PrintHeader("Fig 4: SqueezeNet per-layer CTC (no-pipeline)");
    bench::PrintRow("layer", {"CTC (OPs/B)"});
    for (const auto& l : w.layers)
        bench::PrintRow(l.name, {bench::Fmt(l.LayerCtc())});

    bench::PrintHeader("Fig 4: segment CTC under different segmentations");
    auto print_segments = [&](const char* label, const seg::Assignment& a) {
        seg::SegmentMetrics m = seg::ComputeMetrics(w, a);
        std::vector<std::string> cells;
        for (double ctc : m.seg_ctc)
            cells.push_back(bench::Fmt(ctc, "%.1f"));
        bench::PrintRow(label, {"min=" + bench::Fmt(m.min_ctc, "%.1f")});
        bench::PrintRow("  per-segment", cells, 24, 8);
    };
    print_segments("segment-grained-1 (3)", seg::EvenSegmentation(w, 3, 1));
    print_segments("segment-grained-2 (6)", seg::EvenSegmentation(w, 6, 1));

    seg::Assignment tuned;
    seg::HeuristicSegmenter segmenter;
    if (segmenter.Solve(w, 5, 2, tuned))
        print_segments("AutoSeg segmentation", tuned);
}

void
BM_HeuristicSegmentSqueezeNet(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::HeuristicSegmenter segmenter;
    for (auto _ : state) {
        seg::Assignment a;
        segmenter.Solve(w, 5, 2, a);
        benchmark::DoNotOptimize(a.num_segments);
    }
}
BENCHMARK(BM_HeuristicSegmentSqueezeNet)->Unit(benchmark::kMillisecond);

}  // namespace

SPA_BENCH_MAIN(PrintFig4)
