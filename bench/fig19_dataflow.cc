// Fig. 19: on-chip data-moving cost of WS-only vs OS-only vs the
// dataflow-hybrid PU selection, on AlexNet / ResNet18 / MobileNetV1 /
// SqueezeNet. Big-weight models prefer WS, big-fmap models prefer OS,
// and the hybrid never loses.

#include "bench/bench_util.h"
#include "cost/cost.h"
#include "nn/models.h"

namespace {

using namespace spa;

/** Total on-chip buffer energy of a model under a fixed dataflow. */
double
BufferEnergy(const cost::CostModel& cost_model, const nn::Workload& w,
             const hw::PuConfig& pu, hw::Dataflow df)
{
    double pj = 0.0;
    for (const auto& l : w.layers) {
        pj += cost_model.BufferEnergyPj(cost_model.OnChipTraffic(l, pu, df), pu,
                                        l.weight_bytes);
        pj += cost_model.ArrayControlEnergyPj(l, pu, df);
    }
    return pj;
}

double
HybridEnergy(const cost::CostModel& cost_model, const nn::Workload& w,
             const hw::PuConfig& pu)
{
    double pj = 0.0;
    for (const auto& l : w.layers) {
        const hw::Dataflow df = cost_model.BestDataflowByEnergy(l, pu);
        pj += cost_model.BufferEnergyPj(cost_model.OnChipTraffic(l, pu, df), pu,
                                        l.weight_bytes);
        pj += cost_model.ArrayControlEnergyPj(l, pu, df);
    }
    return pj;
}

void
PrintFig19()
{
    cost::CostModel cost_model;
    const hw::PuConfig pu{16, 16, 64 * 1024, 64 * 1024};
    bench::PrintHeader("Fig 19: on-chip data moving cost (mJ per inference)");
    bench::PrintRow("model", {"WS-only", "OS-only", "Hybrid", "best fixed"});
    for (const char* model : {"alexnet", "resnet18", "mobilenet_v1", "squeezenet"}) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        const double ws =
            BufferEnergy(cost_model, w, pu, hw::Dataflow::kWeightStationary) / 1e9;
        const double os =
            BufferEnergy(cost_model, w, pu, hw::Dataflow::kOutputStationary) / 1e9;
        const double hybrid = HybridEnergy(cost_model, w, pu) / 1e9;
        bench::PrintRow(model, {bench::Fmt(ws, "%.3f"), bench::Fmt(os, "%.3f"),
                                bench::Fmt(hybrid, "%.3f"),
                                ws < os ? "WS" : "OS"});
    }
    std::printf("(hybrid <= min(WS, OS) per layer by construction)\n");
}

void
BM_DataflowSelection(benchmark::State& state)
{
    cost::CostModel cost_model;
    const hw::PuConfig pu{16, 16, 64 * 1024, 64 * 1024};
    nn::Workload w = nn::ExtractWorkload(nn::BuildMobileNetV1());
    for (auto _ : state) {
        double pj = HybridEnergy(cost_model, w, pu);
        benchmark::DoNotOptimize(pj);
    }
}
BENCHMARK(BM_DataflowSelection);

}  // namespace

SPA_BENCH_MAIN(PrintFig19)
