// Fig. 12: speedup of the AutoSeg SPA designs over general DNN
// processors (no-pipeline models at the Eyeriss / NVDLA-Small /
// NVDLA-Large / EdgeTPU budgets of Table II), over the nine-model
// benchmark suite, plus the geometric means the paper quotes
// (2.71x / 3.55x / 2.21x / 3.89x).

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "common/util.h"
#include "nn/models.h"

namespace {

using namespace spa;

void
PrintFig12()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 3, 4, 6};
    autoseg::Engine engine(cost_model, options);
    baselines::NoPipelineModel no_pipe(cost_model);
    autoseg::SegmentationCache cache;

    const auto budgets = hw::AsicBudgets();
    bench::PrintHeader("Fig 12: SPA speedup over same-budget general processors");
    {
        std::vector<std::string> headers;
        for (const auto& b : budgets)
            headers.push_back(b.name);
        bench::PrintRow("model", headers);
    }
    std::vector<std::vector<double>> speedups(budgets.size());
    for (const std::string& model : nn::ZooModelNames()) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        std::vector<std::string> cells;
        for (size_t b = 0; b < budgets.size(); ++b) {
            auto base = no_pipe.Evaluate(w, budgets[b]);
            auto spa = engine.Run(w, budgets[b], alloc::DesignGoal::kLatency, &cache);
            if (!spa.ok || !base.ok) {
                cells.push_back("n/a");
                continue;
            }
            const double speedup = base.latency_seconds / spa.alloc.latency_seconds;
            speedups[b].push_back(speedup);
            cells.push_back(bench::Fmt(speedup) + "x");
        }
        bench::PrintRow(model, cells);
    }
    std::vector<std::string> means;
    for (size_t b = 0; b < speedups.size(); ++b) {
        const double geomean = GeoMean(speedups[b]);
        means.push_back(bench::Fmt(geomean) + "x");
        bench::SetMetric("geomean_speedup." + budgets[b].name, geomean);
    }
    bench::PrintRow("geomean", means);
    std::printf("(paper reports 2.71x / 3.55x / 2.21x / 3.89x averages)\n");
}

void
BM_AutoSegSqueezeNetEyeriss(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    for (auto _ : state) {
        auto result = engine.Run(w, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
        benchmark::DoNotOptimize(result.alloc.latency_seconds);
    }
}
BENCHMARK(BM_AutoSegSqueezeNetEyeriss)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

SPA_BENCH_MAIN(PrintFig12)
