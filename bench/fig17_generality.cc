// Fig. 17: generality analysis, in two parts.
//
// 1. The paper's remap matrix: a dedicated SPA accelerator is built per
//    model; every other model is then remapped onto it (hardware and
//    pruned fabric fixed, segmentation re-targeted to latency).
//    Reported as speedup over the NVDLA-Small-budget no-pipeline
//    baseline (the bandwidth regime where pipelining pays; see
//    EXPERIMENTS.md): dedicated designs win, but non-dedicated mappings
//    still beat the baseline.
//
// 2. A scenario matrix over the extended zoo — the CNN set plus the
//    BERT-base-class and ViT-B/16-class transformer graphs — under both
//    an ASIC (NVDLA-Small) and an FPGA (ZU3EG) resource frame. Every
//    scenario runs the full flow end to end: segmentation, allocation,
//    then the cycle-accurate pipeline simulator over each segment of
//    the chosen design. This is the AutoDNNchip-style generality claim:
//    one predictor, every workload family, both resource frames.

#include <map>

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "nn/models.h"
#include "pipe/sim.h"

namespace {

using namespace spa;

const char* kModels[] = {"alexnet", "squeezenet", "mobilenet_v1", "resnet18"};

void
PrintFig17()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    const hw::Platform budget = hw::NvdlaSmallBudget();
    baselines::NoPipelineModel no_pipe(cost_model);
    autoseg::SegmentationCache cache;

    // Build the dedicated designs and their pruned fabrics.
    struct Dedicated
    {
        autoseg::CoDesignResult result;
        noc::PruneStats prune;
    };
    std::map<std::string, Dedicated> dedicated;
    noc::BenesNetwork fabric(4);
    for (const char* model : kModels) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        Dedicated d;
        d.result = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
        if (!d.result.ok)
            continue;
        std::vector<noc::BenesConfig> configs;
        for (int s = 0; s < d.result.assignment.num_segments; ++s) {
            std::map<int, std::vector<int>> fanout;
            for (const auto& comm :
                 seg::SegmentComms(w, d.result.assignment, s)) {
                fanout[comm.src_pu].push_back(comm.dst_pu);
            }
            std::vector<noc::RouteRequest> requests;
            for (auto& [src, dsts] : fanout)
                requests.push_back({src, dsts});
            std::vector<noc::BenesConfig> phases;
            if (!requests.empty() && fabric.RoutePhased(requests, phases))
                for (const auto& cfg : phases)
                    configs.push_back(cfg);
        }
        // Dedicated designs always keep the default neighbour chain
        // (PU i -> i+1) wired: it is the fallback path every
        // segmentation can use, so remapped models stay routable.
        {
            std::vector<noc::RouteRequest> chain;
            for (int i = 0; i + 1 < 4; ++i)
                chain.push_back({i, {i + 1}});
            noc::BenesConfig cfg;
            if (fabric.Route(chain, cfg))
                configs.push_back(cfg);
        }
        d.prune = fabric.Prune(configs);
        dedicated[model] = d;
    }

    bench::PrintHeader("Fig 17: speedup over no-pipeline baseline");
    {
        std::vector<std::string> headers;
        for (const char* m : kModels)
            headers.push_back(std::string("on ") + m);
        bench::PrintRow("workload \\ accel", headers, 20, 14);
    }
    for (const char* workload : kModels) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(workload));
        auto base = no_pipe.Evaluate(w, budget);
        std::vector<std::string> cells;
        for (const char* accel : kModels) {
            auto it = dedicated.find(accel);
            if (it == dedicated.end()) {
                cells.push_back("n/a");
                continue;
            }
            double latency;
            if (std::string(workload) == accel) {
                latency = it->second.result.alloc.latency_seconds;  // dedicated
            } else {
                auto remapped = engine.Remap(w, it->second.result.alloc.config,
                                             fabric, it->second.prune.link_mask,
                                             alloc::DesignGoal::kLatency);
                if (!remapped.ok) {
                    cells.push_back("unroutable");
                    continue;
                }
                latency = remapped.alloc.latency_seconds;
            }
            cells.push_back(bench::Fmt(base.latency_seconds / latency) + "x");
        }
        bench::PrintRow(workload, cells, 20, 14);
    }
    std::printf("(diagonal = model-dedicated accelerator)\n");
}

/**
 * Scenario matrix: {CNN zoo, BERT, ViT} x {ASIC, FPGA}, each scenario
 * run end to end (segmentation -> allocation -> pipeline sim). Records
 * one metric block per scenario into BENCH_fig17_generality.json.
 */
void
PrintScenarioMatrix()
{
    cost::CostModel cost_model;
    cost_model.EnableMemo();
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    pipe::SegmentSimulator sim(cost_model);

    const hw::Platform frames[] = {hw::NvdlaSmallBudget(), hw::Zu3egBudget()};

    bench::PrintHeader("Fig 17b: scenario matrix (extended zoo x resource frames)");
    bench::PrintRow("model / frame",
                    {"kind", "S", "N", "latency", "fps", "pipe eff"}, 26, 10);
    for (const std::string& model : nn::AllZooModelNames()) {
        const nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        for (const hw::Platform& frame : frames) {
            const std::string key = model + "." + frame.name;
            const autoseg::CoDesignResult result =
                engine.Run(w, frame, alloc::DesignGoal::kLatency);
            if (!result.ok || !result.status.ok()) {
                bench::PrintRow(model + " / " + frame.name,
                                {"-", "-", "-", "failed", "-", "-"}, 26, 10);
                bench::SetMetric(key + ".ok", false);
                continue;
            }
            // Pipeline-simulate every segment of the chosen design with
            // its allocator-selected per-PU dataflows.
            int64_t sim_cycles = 0, busy = 0, offered = 0;
            for (int s = 0; s < result.assignment.num_segments; ++s) {
                const pipe::SegmentSimResult seg_sim =
                    sim.Simulate(w, result.assignment, s, result.alloc.config,
                                 result.alloc.segments[static_cast<size_t>(s)]
                                     .dataflow);
                sim_cycles += seg_sim.total_cycles;
                for (size_t n = 0; n < seg_sim.pu_busy_cycles.size(); ++n) {
                    busy += seg_sim.pu_busy_cycles[n];
                    offered += seg_sim.total_cycles;
                }
            }
            const double pipe_eff =
                offered > 0 ? static_cast<double>(busy) /
                                  static_cast<double>(offered)
                            : 0.0;
            const bool fpga = frame.kind == hw::PlatformKind::kFpga;
            bench::PrintRow(
                model + " / " + frame.name,
                {fpga ? "fpga" : "asic",
                 std::to_string(result.assignment.num_segments),
                 std::to_string(result.assignment.num_pus),
                 bench::Fmt(result.alloc.latency_seconds * 1e3) + "ms",
                 bench::Fmt(result.alloc.throughput_fps),
                 bench::Fmt(pipe_eff)},
                26, 10);
            bench::SetMetric(key + ".ok", true);
            bench::SetMetric(key + ".kind", std::string(fpga ? "fpga" : "asic"));
            bench::SetMetric(key + ".segments", result.assignment.num_segments);
            bench::SetMetric(key + ".pus", result.assignment.num_pus);
            bench::SetMetric(key + ".latency_ms",
                             result.alloc.latency_seconds * 1e3);
            bench::SetMetric(key + ".throughput_fps",
                             result.alloc.throughput_fps);
            bench::SetMetric(key + ".sim_total_cycles", sim_cycles);
            bench::SetMetric(key + ".pipeline_efficiency", pipe_eff);
        }
    }
}

void
PrintFig17All()
{
    PrintFig17();
    PrintScenarioMatrix();
}

void
BM_RemapSqueezeNetOntoAlexNetDesign(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload alex = nn::ExtractWorkload(nn::BuildAlexNet());
    auto design = engine.Run(alex, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    noc::BenesNetwork fabric(4);
    std::vector<std::array<bool, 2>> all_links(
        static_cast<size_t>(fabric.NumNodes()), {true, true});
    nn::Workload squeeze = nn::ExtractWorkload(nn::BuildSqueezeNet());
    for (auto _ : state) {
        auto remapped = engine.Remap(squeeze, design.alloc.config, fabric, all_links,
                                     alloc::DesignGoal::kLatency);
        benchmark::DoNotOptimize(remapped.ok);
    }
}
BENCHMARK(BM_RemapSqueezeNetOntoAlexNetDesign)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

SPA_BENCH_MAIN(PrintFig17All)
