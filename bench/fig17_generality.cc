// Fig. 17: generality analysis. A dedicated SPA accelerator is built
// per model; every other model is then remapped onto it (hardware and
// pruned fabric fixed, segmentation re-targeted to latency). Reported
// as speedup over the NVDLA-Small-budget no-pipeline baseline (the
// bandwidth regime where pipelining pays; see EXPERIMENTS.md): dedicated
// designs win, but non-dedicated mappings still beat the baseline.

#include <map>

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "nn/models.h"

namespace {

using namespace spa;

const char* kModels[] = {"alexnet", "squeezenet", "mobilenet_v1", "resnet18"};

void
PrintFig17()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    const hw::Platform budget = hw::NvdlaSmallBudget();
    baselines::NoPipelineModel no_pipe(cost_model);
    autoseg::SegmentationCache cache;

    // Build the dedicated designs and their pruned fabrics.
    struct Dedicated
    {
        autoseg::CoDesignResult result;
        noc::PruneStats prune;
    };
    std::map<std::string, Dedicated> dedicated;
    noc::BenesNetwork fabric(4);
    for (const char* model : kModels) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
        Dedicated d;
        d.result = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
        if (!d.result.ok)
            continue;
        std::vector<noc::BenesConfig> configs;
        for (int s = 0; s < d.result.assignment.num_segments; ++s) {
            std::map<int, std::vector<int>> fanout;
            for (const auto& comm :
                 seg::SegmentComms(w, d.result.assignment, s)) {
                fanout[comm.src_pu].push_back(comm.dst_pu);
            }
            std::vector<noc::RouteRequest> requests;
            for (auto& [src, dsts] : fanout)
                requests.push_back({src, dsts});
            std::vector<noc::BenesConfig> phases;
            if (!requests.empty() && fabric.RoutePhased(requests, phases))
                for (const auto& cfg : phases)
                    configs.push_back(cfg);
        }
        // Dedicated designs always keep the default neighbour chain
        // (PU i -> i+1) wired: it is the fallback path every
        // segmentation can use, so remapped models stay routable.
        {
            std::vector<noc::RouteRequest> chain;
            for (int i = 0; i + 1 < 4; ++i)
                chain.push_back({i, {i + 1}});
            noc::BenesConfig cfg;
            if (fabric.Route(chain, cfg))
                configs.push_back(cfg);
        }
        d.prune = fabric.Prune(configs);
        dedicated[model] = d;
    }

    bench::PrintHeader("Fig 17: speedup over no-pipeline baseline");
    {
        std::vector<std::string> headers;
        for (const char* m : kModels)
            headers.push_back(std::string("on ") + m);
        bench::PrintRow("workload \\ accel", headers, 20, 14);
    }
    for (const char* workload : kModels) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(workload));
        auto base = no_pipe.Evaluate(w, budget);
        std::vector<std::string> cells;
        for (const char* accel : kModels) {
            auto it = dedicated.find(accel);
            if (it == dedicated.end()) {
                cells.push_back("n/a");
                continue;
            }
            double latency;
            if (std::string(workload) == accel) {
                latency = it->second.result.alloc.latency_seconds;  // dedicated
            } else {
                auto remapped = engine.Remap(w, it->second.result.alloc.config,
                                             fabric, it->second.prune.link_mask,
                                             alloc::DesignGoal::kLatency);
                if (!remapped.ok) {
                    cells.push_back("unroutable");
                    continue;
                }
                latency = remapped.alloc.latency_seconds;
            }
            cells.push_back(bench::Fmt(base.latency_seconds / latency) + "x");
        }
        bench::PrintRow(workload, cells, 20, 14);
    }
    std::printf("(diagonal = model-dedicated accelerator)\n");
}

void
BM_RemapSqueezeNetOntoAlexNetDesign(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload alex = nn::ExtractWorkload(nn::BuildAlexNet());
    auto design = engine.Run(alex, hw::EyerissBudget(), alloc::DesignGoal::kLatency);
    noc::BenesNetwork fabric(4);
    std::vector<std::array<bool, 2>> all_links(
        static_cast<size_t>(fabric.NumNodes()), {true, true});
    nn::Workload squeeze = nn::ExtractWorkload(nn::BuildSqueezeNet());
    for (auto _ : state) {
        auto remapped = engine.Remap(squeeze, design.alloc.config, fabric, all_links,
                                     alloc::DesignGoal::kLatency);
        benchmark::DoNotOptimize(remapped.ok);
    }
}
BENCHMARK(BM_RemapSqueezeNetOntoAlexNetDesign)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

SPA_BENCH_MAIN(PrintFig17)
