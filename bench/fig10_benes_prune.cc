// Fig. 10: Benes network pruning. Routes the per-segment inter-PU
// patterns of a real segmented model, prunes the fabric to the union
// of used nodes/links, and reports the area saving.

#include <map>

#include "bench/bench_util.h"
#include "nn/models.h"
#include "noc/benes.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

void
PrintFig10()
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::Assignment a;
    seg::HeuristicSegmenter segmenter;
    if (!segmenter.Solve(w, 4, 4, a))
        return;

    noc::BenesNetwork fabric(4);
    std::vector<noc::BenesConfig> configs;
    bench::PrintHeader("Fig 10: per-segment fabric configurations (SqueezeNet, 4 PUs)");
    for (int s = 0; s < a.num_segments; ++s) {
        std::map<int, std::vector<int>> fanout;
        for (const auto& comm : seg::SegmentComms(w, a, s))
            fanout[comm.src_pu].push_back(comm.dst_pu);
        std::vector<noc::RouteRequest> requests;
        std::string pattern;
        for (auto& [src, dsts] : fanout) {
            requests.push_back({src, dsts});
            for (int d : dsts)
                pattern += std::to_string(src + 1) + "->" + std::to_string(d + 1) + " ";
        }
        std::vector<noc::BenesConfig> phases;
        const bool routed = requests.empty() || fabric.RoutePhased(requests, phases);
        bench::PrintRow("segment-" + std::to_string(s + 1),
                        {routed ? "routed (" + std::to_string(phases.size()) +
                                      " phase)"
                                : "FAILED"});
        std::printf("    pattern: %s\n", pattern.empty() ? "(none)" : pattern.c_str());
        for (const auto& cfg : phases)
            configs.push_back(cfg);
    }

    noc::PruneStats stats = fabric.Prune(configs);
    bench::PrintHeader("Fig 10: pruning outcome");
    std::printf("nodes: %d used / %d total (%.0f%% removed)\n", stats.used_nodes,
                stats.total_nodes, 100.0 * stats.NodeReduction());
    std::printf("links: %d used / %d total\n", stats.used_links, stats.total_links);
    std::printf("pruned fabric area: %.4f mm^2 (full: %.4f mm^2)\n",
                fabric.PrunedAreaMm2(stats),
                fabric.PrunedAreaMm2(noc::PruneStats{0, fabric.NumNodes(), 0, 0, {}}));
}

void
BM_BenesRoutePermutation(benchmark::State& state)
{
    noc::BenesNetwork net(static_cast<int>(state.range(0)));
    std::vector<int> perm(static_cast<size_t>(net.width()));
    for (int i = 0; i < net.width(); ++i)
        perm[static_cast<size_t>(i)] = (i + 1) % net.width();
    for (auto _ : state) {
        auto cfg = net.RoutePermutation(perm);
        benchmark::DoNotOptimize(cfg.out_sel.data());
    }
}
BENCHMARK(BM_BenesRoutePermutation)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_BenesPropagate(benchmark::State& state)
{
    noc::BenesNetwork net(16);
    std::vector<int> perm(16);
    for (int i = 0; i < 16; ++i)
        perm[static_cast<size_t>(i)] = 15 - i;
    auto cfg = net.RoutePermutation(perm);
    std::vector<int64_t> inputs(16, 1);
    for (auto _ : state) {
        auto out = net.Propagate(cfg, inputs);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_BenesPropagate);

}  // namespace

SPA_BENCH_MAIN(PrintFig10)
