// Fig. 5: the operation (MAC) counts of SqueezeNet's layers and the
// per-segment operational distributions after proper layer grouping --
// similar distributions across segments enable one shared PE quota.

#include "bench/bench_util.h"
#include "common/util.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

void
PrintFig5()
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    bench::PrintHeader("Fig 5: SqueezeNet per-layer MACs");
    for (const auto& l : w.layers)
        bench::PrintRow(l.name, {OpsToString(static_cast<double>(l.ops))});

    bench::PrintHeader("Fig 5: operational distributions V_s per segment");
    seg::Assignment a;
    seg::HeuristicSegmenter segmenter;
    if (!segmenter.Solve(w, 4, 3, a))
        return;
    seg::SegmentMetrics m = seg::ComputeMetrics(w, a);
    bench::PrintRow("segment", {"V[PU1]", "V[PU2]", "V[PU3]"});
    for (int s = 0; s < a.num_segments; ++s) {
        std::vector<std::string> cells;
        for (int n = 0; n < a.num_pus; ++n)
            cells.push_back(bench::Fmt(
                m.v[static_cast<size_t>(s)][static_cast<size_t>(n)], "%.3f"));
        bench::PrintRow("segment-" + std::to_string(s + 1), cells);
    }
    std::printf("SOD (sum of pairwise Manhattan distances): %.4f\n", m.sod);
}

void
BM_ComputeDistributions(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::Assignment a = seg::EvenSegmentation(w, 6, 3);
    for (auto _ : state) {
        auto m = seg::ComputeMetrics(w, a);
        benchmark::DoNotOptimize(m.sod);
    }
}
BENCHMARK(BM_ComputeDistributions);

}  // namespace

SPA_BENCH_MAIN(PrintFig5)
