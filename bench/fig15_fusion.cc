// Fig. 15: speedup of the AutoSeg SPA designs over the no-pipeline
// baselines *with Optimus-style layer fusion* (Sec. VI-D). Fusion
// narrows the gap but SPA still wins: buffers hold overlap halos and
// the unified PU still underutilizes on diverse layers.

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "common/util.h"
#include "nn/models.h"

namespace {

using namespace spa;

void
PrintFig15()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 3, 4, 6};
    autoseg::Engine engine(cost_model, options);
    baselines::FusedLayerModel fused(cost_model);
    baselines::NoPipelineModel plain(cost_model);
    autoseg::SegmentationCache cache;

    const hw::Platform budgets[] = {hw::EyerissBudget(), hw::NvdlaSmallBudget()};
    for (const auto& budget : budgets) {
        bench::PrintHeader("Fig 15: SPA speedup over fusion baseline (" +
                           budget.name + ")");
        bench::PrintRow("model", {"vs fusion", "vs plain", "fusion gain"});
        std::vector<double> vs_fusion;
        for (const std::string& model : nn::ZooModelNames()) {
            nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
            auto base_fused = fused.Evaluate(w, budget);
            auto base_plain = plain.Evaluate(w, budget);
            auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency, &cache);
            if (!spa.ok)
                continue;
            const double s_fused =
                base_fused.latency_seconds / spa.alloc.latency_seconds;
            const double s_plain =
                base_plain.latency_seconds / spa.alloc.latency_seconds;
            vs_fusion.push_back(s_fused);
            bench::PrintRow(model,
                            {bench::Fmt(s_fused) + "x", bench::Fmt(s_plain) + "x",
                             bench::Fmt(base_plain.latency_seconds /
                                        base_fused.latency_seconds) +
                                 "x"});
        }
        bench::PrintRow("geomean", {bench::Fmt(GeoMean(vs_fusion)) + "x"});
    }
}

void
BM_FusionGrouping(benchmark::State& state)
{
    cost::CostModel cost_model;
    baselines::FusedLayerModel fused(cost_model);
    nn::Workload w = nn::ExtractWorkload(nn::BuildResNet50());
    for (auto _ : state) {
        auto groups = fused.FusionGroups(w, hw::EyerissBudget());
        benchmark::DoNotOptimize(groups.size());
    }
}
BENCHMARK(BM_FusionGrouping);

}  // namespace

SPA_BENCH_MAIN(PrintFig15)
