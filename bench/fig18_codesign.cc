// Fig. 18: co-design method comparison on AlexNet and MobileNetV1 at
// two hardware budgets. Methods: MIP-Random, MIP-Baye (our MIP
// segmentation + random / Bayesian hardware search), Baye-Heuristic
// (Bayesian segmentation + Alg. 1 allocation), Baye-Baye (nested
// Bayesian loops, as in [60]), and AutoSeg (MIP segmentation + the
// Alg. 1 heuristic). Reports each method's best latency and energy.

#include <functional>

#include "autoseg/autoseg.h"
#include "autoseg/energy.h"
#include "bench/bench_util.h"
#include "common/util.h"
#include "eval/evaluator.h"
#include "nn/models.h"
#include "opt/optimizer.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

constexpr double kInfeasible = 1e9;
constexpr int kNumPus = 4;

/** Decodes a hardware point: per-PU PE exponents + weight-buffer scale. */
hw::SpaConfig
DecodeHardware(const std::vector<int>& x, const nn::Workload& w,
               const seg::Assignment& a, const hw::Platform& budget)
{
    hw::SpaConfig cfg;
    cfg.freq_ghz = budget.freq_ghz;
    cfg.bandwidth_gbps = budget.bandwidth_gbps;
    cfg.pus.resize(static_cast<size_t>(kNumPus));
    for (int n = 0; n < kNumPus; ++n) {
        const int64_t pes = 1LL << (2 + x[static_cast<size_t>(n)]);  // 4..512
        int64_t rows = 1;
        while (rows * rows < pes)
            rows *= 2;
        if (rows * rows > pes)
            rows /= 2;
        hw::PuConfig& pu = cfg.pus[static_cast<size_t>(n)];
        pu.rows = rows;
        pu.cols = pes / rows;
        int64_t ab = 256, wb = 256;
        for (int l = 0; l < w.NumLayers(); ++l) {
            if (a.pu_of[static_cast<size_t>(l)] != n)
                continue;
            const auto& layer = w.layers[static_cast<size_t>(l)];
            ab = std::max(ab, cost::CostModel::MinActBufferBytes(layer, rows, 1));
            wb = std::max(wb, cost::CostModel::MinWeightBufferBytes(layer, pes, 1));
        }
        pu.act_buffer_bytes = ab;
        pu.weight_buffer_bytes = wb * (1 + x[static_cast<size_t>(kNumPus)]);
    }
    return cfg;
}

/** Decodes a segmentation point: S and jittered cut positions. */
bool
DecodeSegmentation(const std::vector<int>& x, const nn::Workload& w,
                   seg::Assignment& a)
{
    const int num_layers = w.NumLayers();
    const int num_segments = 1 + x[0];
    if (num_layers < num_segments * kNumPus)
        return false;
    // Quantile cuts with jitter.
    std::vector<int> cuts{0};
    for (int s = 1; s < num_segments; ++s) {
        int cut = s * num_layers / num_segments;
        if (static_cast<size_t>(s) < x.size())
            cut += x[static_cast<size_t>(s)] - 3;
        cut = std::clamp(cut, cuts.back() + kNumPus,
                         num_layers - (num_segments - s) * kNumPus);
        if (cut <= cuts.back())
            return false;
        cuts.push_back(cut);
    }
    a.num_segments = num_segments;
    a.num_pus = kNumPus;
    a.segment_of.assign(static_cast<size_t>(num_layers), 0);
    a.pu_of.assign(static_cast<size_t>(num_layers), 0);
    for (int l = 0; l < num_layers; ++l) {
        int s = 0;
        while (s + 1 < num_segments && l >= cuts[static_cast<size_t>(s) + 1])
            ++s;
        a.segment_of[static_cast<size_t>(l)] = s;
        const int lo = cuts[static_cast<size_t>(s)];
        const int hi = (s + 1 < num_segments) ? cuts[static_cast<size_t>(s) + 1]
                                              : num_layers;
        const int len = hi - lo;
        int pu = static_cast<int>(static_cast<int64_t>(l - lo) * kNumPus / len);
        a.pu_of[static_cast<size_t>(l)] = std::min(pu, kNumPus - 1);
    }
    return seg::CheckConstraints(w, a).empty();
}

struct MethodResult
{
    std::string name;
    double latency_ms = 1e30;
    double energy_e10pj = 0.0;  // 1e10 pJ, the Fig. 18 axis unit
    int evaluations = 0;
};

void
RunCase(const char* model, const hw::Platform& budget)
{
    // Every method's objective goes through the shared evaluation
    // layer: one memoized cost model, one pool, --jobs wide. Enabling
    // the memo here lets the AutoSeg engine below share its entries.
    cost::CostModel cost_model;
    cost_model.EnableMemo();
    eval::Evaluator evaluator(cost_model, eval::EvalOptions{bench::Jobs(), true});
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
    std::vector<MethodResult> rows;

    auto energy_of = [&](const seg::Assignment& a,
                         const alloc::AllocationResult& r) {
        return autoseg::EvaluateSpaEnergy(evaluator.cost_model(), w, a, r)
                   .TotalPj() /
               1e10;
    };

    // Shared MIP/heuristic segmentation for the MIP-* methods.
    seg::Assignment mip_assignment;
    bool have_mip = seg::SolveSegmentation(
        w, std::max(1, std::min(4, w.NumLayers() / kNumPus)), kNumPus,
        mip_assignment);
    if (!have_mip)
        return;

    // Hardware-search objective over the fixed segmentation.
    opt::Space hw_space;
    hw_space.cardinalities.assign(kNumPus, 8);  // PE exponent
    hw_space.cardinalities.push_back(4);        // WB scale
    auto hw_objective = [&](const std::vector<int>& x) {
        hw::SpaConfig cfg = DecodeHardware(x, w, mip_assignment, budget);
        if (!hw::FitsBudget(cfg, budget))
            return kInfeasible;
        auto r = evaluator.Evaluate(w, mip_assignment, cfg);
        return r.latency_seconds * 1e3;
    };
    auto finish_hw = [&](const char* name, const opt::OptResult& r) {
        MethodResult m;
        m.name = name;
        m.evaluations = static_cast<int>(r.evaluations.size());
        if (r.best_value < kInfeasible) {
            m.latency_ms = r.best_value;
            hw::SpaConfig cfg = DecodeHardware(r.best_x, w, mip_assignment, budget);
            m.energy_e10pj =
                energy_of(mip_assignment, evaluator.Evaluate(w, mip_assignment, cfg));
        }
        rows.push_back(m);
    };
    // Batched random search: propose a batch, evaluate it across the
    // pool, reduce in proposal order (trace identical to serial).
    const opt::BatchEval parallel_eval{&evaluator.pool(),
                                       4 * evaluator.jobs()};
    opt::BayesOptions bayes;
    bayes.pool = &evaluator.pool();
    finish_hw("MIP-Random",
              opt::RandomSearch(hw_space, hw_objective, 500, 11, parallel_eval));
    finish_hw("MIP-Baye",
              opt::BayesianOptimize(hw_space, hw_objective, 150, 12, bayes));

    // Baye-Heuristic: Bayesian over segmentation, Alg. 1 allocation.
    opt::Space seg_space;
    seg_space.cardinalities = {6, 7, 7, 7, 7, 7};  // S-1 and cut jitters
    auto seg_objective = [&](const std::vector<int>& x) {
        seg::Assignment a;
        if (!DecodeSegmentation(x, w, a))
            return kInfeasible;
        auto r = evaluator.Allocate(w, a, budget, alloc::DesignGoal::kLatency);
        return r.ok ? r.latency_seconds * 1e3 : kInfeasible;
    };
    {
        auto r = opt::BayesianOptimize(seg_space, seg_objective, 200, 13, bayes);
        MethodResult m;
        m.name = "Baye-Heuristic";
        m.evaluations = static_cast<int>(r.evaluations.size());
        seg::Assignment best_seg;
        if (r.best_value < kInfeasible && DecodeSegmentation(r.best_x, w, best_seg)) {
            m.latency_ms = r.best_value;
            auto alloc_r = evaluator.Allocate(w, best_seg, budget,
                                              alloc::DesignGoal::kLatency);
            m.energy_e10pj = energy_of(best_seg, alloc_r);
        }
        rows.push_back(m);
    }

    // Baye-Baye: nested loops per [60] -- outer hardware, inner
    // segmentation, only latency feedback crossing the boundary.
    {
        int evals = 0;
        seg::Assignment best_inner;
        hw::SpaConfig best_cfg;
        auto outer_objective = [&](const std::vector<int>& hx) {
            seg::Assignment probe = mip_assignment;  // shape source only
            hw::SpaConfig cfg = DecodeHardware(hx, w, probe, budget);
            if (!hw::FitsBudget(cfg, budget))
                return kInfeasible;
            seg::Assignment inner_tmp;
            auto inner_objective = [&](const std::vector<int>& sx) {
                ++evals;
                if (!DecodeSegmentation(sx, w, inner_tmp))
                    return kInfeasible;
                return evaluator.Evaluate(w, inner_tmp, cfg).latency_seconds * 1e3;
            };
            auto inner = opt::BayesianOptimize(seg_space, inner_objective, 40,
                                               17 + evals, bayes);
            if (inner.best_value < kInfeasible &&
                DecodeSegmentation(inner.best_x, w, inner_tmp)) {
                best_inner = inner_tmp;
                best_cfg = cfg;
            }
            return inner.best_value;
        };
        auto r = opt::BayesianOptimize(hw_space, outer_objective, 20, 19, bayes);
        MethodResult m;
        m.name = "Baye-Baye";
        m.evaluations = evals;
        if (r.best_value < kInfeasible && !best_inner.segment_of.empty()) {
            m.latency_ms = r.best_value;
            m.energy_e10pj =
                energy_of(best_inner, evaluator.Evaluate(w, best_inner, best_cfg));
        }
        rows.push_back(m);
    }

    // AutoSeg: MIP/heuristic segmentation + Alg. 1 ("MIP-Heuristic").
    {
        autoseg::CoDesignOptions options;
        options.pu_candidates = {kNumPus};
        options.jobs = bench::Jobs();
        autoseg::Engine engine(cost_model, options);
        auto result = engine.Run(w, budget, alloc::DesignGoal::kLatency);
        MethodResult m;
        m.name = "AutoSeg";
        m.evaluations = static_cast<int>(result.explored.size());
        if (result.ok) {
            m.latency_ms = result.alloc.latency_seconds * 1e3;
            m.energy_e10pj = energy_of(result.assignment, result.alloc);
        }
        rows.push_back(m);
    }

    bench::PrintHeader(std::string("Fig 18: ") + model + " @ " + budget.name);
    bench::PrintRow("method", {"latency(ms)", "energy(e10pJ)", "evals"});
    const std::string metric_prefix = std::string(model) + "@" + budget.name;
    for (const auto& m : rows) {
        bench::PrintRow(m.name,
                        {m.latency_ms < 1e29 ? bench::Fmt(m.latency_ms, "%.3f")
                                             : "fail",
                         bench::Fmt(m.energy_e10pj, "%.3f"),
                         std::to_string(m.evaluations)});
        if (m.latency_ms < 1e29)
            bench::SetMetric(metric_prefix + "." + m.name + ".latency_ms",
                             m.latency_ms);
        bench::SetMetric(metric_prefix + "." + m.name + ".evaluations",
                         m.evaluations);
    }
}

void
PrintFig18()
{
    RunCase("alexnet", hw::EyerissBudget());
    RunCase("alexnet", hw::NvdlaSmallBudget());
    RunCase("mobilenet_v1", hw::EyerissBudget());
    RunCase("mobilenet_v1", hw::NvdlaSmallBudget());
    std::printf("\n(AutoSeg should dominate or match every baseline method; the "
                "bi-loop Baye-Baye gets the weakest feedback, Sec. VI-G)\n");
}

void
BM_HardwareSearchEvaluation(benchmark::State& state)
{
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model, eval::EvalOptions{1, true});
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNet());
    seg::Assignment a;
    seg::HeuristicSegmenter segmenter;
    segmenter.Solve(w, 2, kNumPus, a);
    hw::SpaConfig cfg = DecodeHardware({4, 4, 4, 4, 1}, w, a, hw::EyerissBudget());
    for (auto _ : state) {
        auto r = evaluator.Evaluate(w, a, cfg);
        benchmark::DoNotOptimize(r.latency_seconds);
    }
}
BENCHMARK(BM_HardwareSearchEvaluation);

}  // namespace

SPA_BENCH_MAIN(PrintFig18)
