// Fig. 2: the roofline model. Plots attainable performance vs CTC for
// the NVDLA-Large-class accelerator and locates the layers of a real
// model against the ridge point.

#include "bench/bench_util.h"
#include "hw/platform.h"
#include "nn/models.h"
#include "nn/workload.h"
#include "roofline/roofline.h"

namespace {

using namespace spa;

void
PrintRoofline()
{
    const hw::Platform p = hw::NvdlaLargeBudget();
    roofline::Roofline roof{p.PeakGops(), p.bandwidth_gbps};
    bench::PrintHeader("Fig 2: roofline (NVDLA-Large class)");
    std::printf("peak = %.0f GOP/s, bandwidth = %.0f GB/s, ridge CTC = %.0f OPs/B\n",
                roof.peak_gops, roof.bandwidth_gbps, roof.RidgeCtc());
    bench::PrintRow("CTC (OPs/B)", {"attainable", "regime"});
    for (double ctc : {1.0, 4.0, 16.0, 64.0, 140.0, 280.0, 560.0, 2240.0}) {
        bench::PrintRow(bench::Fmt(ctc, "%.0f"),
                        {bench::Fmt(roof.AttainableGops(ctc), "%.0f"),
                         roof.IsMemoryBound(ctc) ? "memory" : "compute"});
    }
    // Layerwise CTC of SqueezeNet against the ridge: most layers sit
    // left of it (the motivation for pipelining).
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    int below = 0;
    for (const auto& l : w.layers)
        below += l.LayerCtc() < roof.RidgeCtc();
    std::printf("\nSqueezeNet layers below the ridge: %d / %d\n", below,
                w.NumLayers());
}

void
BM_RooflineEval(benchmark::State& state)
{
    const hw::Platform p = hw::NvdlaLargeBudget();
    roofline::Roofline roof{p.PeakGops(), p.bandwidth_gbps};
    double acc = 0.0;
    for (auto _ : state) {
        for (double ctc = 1.0; ctc < 1000.0; ctc += 1.0)
            acc += roof.AttainableGops(ctc);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_RooflineEval);

}  // namespace

SPA_BENCH_MAIN(PrintRoofline)
