#ifndef SPA_BENCH_BENCH_UTIL_H_
#define SPA_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the experiment harnesses: every bench binary
 * first prints its paper artifact (table / figure series) and then
 * runs the google-benchmark cases for the kernels involved, so
 * running every binary under build/bench regenerates the evaluation.
 *
 * Every harness accepts `--jobs N` (default: hardware concurrency) and
 * feeds it to the evaluation layer; results are bitwise-identical for
 * any jobs value, only wall time changes.
 *
 * Telemetry flags, shared by every harness:
 *   --stats              dump the stats registry table to stderr
 *   --stats-out PATH     write the stats registry as JSON
 *   --trace-out PATH     record a Chrome trace of the artifact stage
 *   --bench-json PATH    override the machine-readable summary path
 *   --no-bench-json      suppress the summary file
 *   --log-timestamps     prefix log lines with elapsed time
 *
 * Unless suppressed, the artifact stage writes BENCH_<name>.json in the
 * working directory: wall time, jobs, the harness's own key metrics
 * (SetMetric), evaluation-cache hit rates, and the full stats registry.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"
#include "json/json.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace spa {
namespace bench {

/** Prints a centered section header for a paper artifact. */
inline void
PrintHeader(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Prints one row of right-aligned cells after a left label. */
inline void
PrintRow(const std::string& label, const std::vector<std::string>& cells,
         int label_width = 24, int cell_width = 12)
{
    std::printf("%-*s", label_width, label.c_str());
    for (const auto& c : cells)
        std::printf("%*s", cell_width, c.c_str());
    std::printf("\n");
}

inline std::string
Fmt(double v, const char* format = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

namespace detail {

inline int&
JobsStorage()
{
    static int jobs = 0;  // 0 = hardware concurrency
    return jobs;
}

/** Telemetry knobs shared by the harness macro and flag parser. */
struct BenchConfig
{
    bool stats_table = false;
    bool bench_json = true;
    std::string stats_out;
    std::string trace_out;
    std::string bench_json_path;  // empty = BENCH_<name>.json
};

inline BenchConfig&
Config()
{
    static BenchConfig config;
    return config;
}

/** Harness-reported key metrics, in insertion order for the summary. */
inline json::Object&
Metrics()
{
    static json::Object metrics;
    return metrics;
}

/** Hit rate from a pair of registry counters; 0 before any lookup. */
inline double
RegistryHitRate(const char* hits_name, const char* misses_name)
{
    obs::Registry& r = obs::Registry::Default();
    const int64_t hits = r.GetCounter(hits_name, "")->value();
    const int64_t total = hits + r.GetCounter(misses_name, "")->value();
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
}

}  // namespace detail

/** The harness-wide parallel evaluation width (the --jobs flag). */
inline int
Jobs()
{
    const int jobs = detail::JobsStorage();
    return jobs > 0 ? jobs : ThreadPool::HardwareJobs();
}

/**
 * Records one harness-level result metric (iterations, objective,
 * speedup, ...) for the BENCH_<name>.json summary. Numbers, strings
 * and booleans all work; later calls with the same key overwrite.
 */
inline void
SetMetric(const std::string& key, json::Value value)
{
    detail::Metrics()[key] = std::move(value);
}

/**
 * Consumes the shared harness flags (`--jobs N`, telemetry knobs) from
 * argv before google-benchmark sees the remainder.
 */
inline void
ParseJobs(int* argc, char** argv)
{
    detail::BenchConfig& config = detail::Config();
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
            detail::JobsStorage() = std::atoi(argv[++i]);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            detail::JobsStorage() = std::atoi(arg + 7);
        } else if (std::strcmp(arg, "--stats") == 0) {
            config.stats_table = true;
        } else if (std::strcmp(arg, "--stats-out") == 0 && i + 1 < *argc) {
            config.stats_out = argv[++i];
        } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < *argc) {
            config.trace_out = argv[++i];
        } else if (std::strcmp(arg, "--bench-json") == 0 && i + 1 < *argc) {
            config.bench_json_path = argv[++i];
        } else if (std::strcmp(arg, "--no-bench-json") == 0) {
            config.bench_json = false;
        } else if (std::strcmp(arg, "--log-timestamps") == 0) {
            spa::detail::SetLogTimestamps(true);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
}

namespace detail {

/** Wraps the artifact stage: tracing, timing, stats + summary dump. */
inline void
RunArtifact(const char* argv0, void (*print_fn)())
{
    BenchConfig& config = Config();
    if (!config.trace_out.empty())
        obs::TraceSession::Get().Start();
    const auto start = std::chrono::steady_clock::now();
    print_fn();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!config.trace_out.empty()) {
        obs::TraceSession::Get().Stop();
        obs::TraceSession::Get().WriteFile(config.trace_out);
    }
    const std::string base = [&] {
        std::string name = argv0;
        const size_t slash = name.find_last_of("/\\");
        return slash == std::string::npos ? name : name.substr(slash + 1);
    }();
    if (config.stats_table)
        std::fprintf(stderr, "%s", obs::Registry::Default().DumpTable().c_str());
    if (!config.stats_out.empty())
        json::SaveFile(config.stats_out, obs::Registry::Default().ToJson());
    if (config.bench_json) {
        json::Object top;
        top["name"] = base;
        top["jobs"] = Jobs();
        top["wall_seconds"] = wall;
        top["metrics"] = json::Value(Metrics());
        json::Object caches;
        caches["seg_cache_hit_rate"] =
            RegistryHitRate("eval.seg_cache.hits", "eval.seg_cache.misses");
        caches["cost_memo_hit_rate"] =
            RegistryHitRate("cost.memo.hits", "cost.memo.misses");
        top["caches"] = json::Value(std::move(caches));
        top["stats"] = obs::Registry::Default().ToJson();
        const std::string path = config.bench_json_path.empty()
                                     ? "BENCH_" + base + ".json"
                                     : config.bench_json_path;
        json::SaveFile(path, json::Value(std::move(top)));
        std::fprintf(stderr, "bench json: %s\n", path.c_str());
    }
}

}  // namespace detail

/** Standard bench main: print the artifact, then run benchmarks. */
#define SPA_BENCH_MAIN(print_fn)                                   \
    int main(int argc, char** argv)                                \
    {                                                              \
        ::spa::detail::SetQuiet(true);                             \
        ::spa::bench::ParseJobs(&argc, argv);                      \
        ::spa::bench::detail::RunArtifact(argv[0], print_fn);      \
        ::benchmark::Initialize(&argc, argv);                      \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))  \
            return 1;                                              \
        ::benchmark::RunSpecifiedBenchmarks();                     \
        return 0;                                                  \
    }

}  // namespace bench
}  // namespace spa

#endif  // SPA_BENCH_BENCH_UTIL_H_
