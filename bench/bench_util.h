#ifndef SPA_BENCH_BENCH_UTIL_H_
#define SPA_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the experiment harnesses: every bench binary
 * first prints its paper artifact (table / figure series) and then
 * runs the google-benchmark cases for the kernels involved, so
 * running every binary under build/bench regenerates the evaluation.
 *
 * Every harness accepts `--jobs N` (default: hardware concurrency) and
 * feeds it to the evaluation layer; results are bitwise-identical for
 * any jobs value, only wall time changes.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"

namespace spa {
namespace bench {

/** Prints a centered section header for a paper artifact. */
inline void
PrintHeader(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Prints one row of right-aligned cells after a left label. */
inline void
PrintRow(const std::string& label, const std::vector<std::string>& cells,
         int label_width = 24, int cell_width = 12)
{
    std::printf("%-*s", label_width, label.c_str());
    for (const auto& c : cells)
        std::printf("%*s", cell_width, c.c_str());
    std::printf("\n");
}

inline std::string
Fmt(double v, const char* format = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

namespace detail {

inline int&
JobsStorage()
{
    static int jobs = 0;  // 0 = hardware concurrency
    return jobs;
}

}  // namespace detail

/** The harness-wide parallel evaluation width (the --jobs flag). */
inline int
Jobs()
{
    const int jobs = detail::JobsStorage();
    return jobs > 0 ? jobs : ThreadPool::HardwareJobs();
}

/**
 * Consumes `--jobs N` / `--jobs=N` from argv (before google-benchmark
 * sees the remainder).
 */
inline void
ParseJobs(int* argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
            detail::JobsStorage() = std::atoi(argv[++i]);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            detail::JobsStorage() = std::atoi(arg + 7);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
}

/** Standard bench main: print the artifact, then run benchmarks. */
#define SPA_BENCH_MAIN(print_fn)                                   \
    int main(int argc, char** argv)                                \
    {                                                              \
        ::spa::detail::SetQuiet(true);                             \
        ::spa::bench::ParseJobs(&argc, argv);                      \
        print_fn();                                                \
        ::benchmark::Initialize(&argc, argv);                      \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))  \
            return 1;                                              \
        ::benchmark::RunSpecifiedBenchmarks();                     \
        return 0;                                                  \
    }

}  // namespace bench
}  // namespace spa

#endif  // SPA_BENCH_BENCH_UTIL_H_
