// Tables IV / V / VI and Fig. 14: the AlexNet (conv-only, two-tower)
// case study on ZC706 @ 200 MHz with 768 PEs. Compares the customized
// no-pipeline, full-pipeline and SPA accelerators: layer binding,
// per-PU latency, PE utilization, and the memory access of each design.

#include "autoseg/autoseg.h"
#include "baselines/models.h"
#include "bench/bench_util.h"
#include "nn/models.h"

namespace {

using namespace spa;

hw::Platform
Zc706With768Pes()
{
    hw::Platform p = hw::Zc7045Budget();
    p.name = "zc706_768pe";
    p.kind = hw::PlatformKind::kAsic;  // count raw PEs like the case study
    p.pes = 768;
    return p;
}

void
PrintCaseStudy()
{
    cost::CostModel cost_model;
    nn::Graph graph = nn::BuildAlexNetConvTower();
    nn::Workload w = nn::ExtractWorkload(graph);
    const hw::Platform budget = Zc706With768Pes();

    // ---- Table IV: customized no-pipeline accelerator. ----
    baselines::NoPipelineModel no_pipe(cost_model);
    // The paper's Table IV design point: a 96x8 (cols x rows) unified PU.
    auto base = no_pipe.Evaluate(w, budget, /*rows_override=*/8);
    bench::PrintHeader("Table IV: no-pipeline accelerator (96x8 unified PU, 768 PEs)");
    bench::PrintRow("layer", {"latency (ms)"});
    for (int l = 0; l < w.NumLayers(); ++l)
        bench::PrintRow(w.layers[static_cast<size_t>(l)].name,
                        {bench::Fmt(base.stage_latency_seconds[static_cast<size_t>(l)] *
                                    1e3, "%.3f")});
    std::printf("overall: %.2f ms, PE utilization %.1f%% (paper: 6.45 ms, 71.0%%)\n",
                base.latency_seconds * 1e3, 100.0 * base.pe_utilization);

    // ---- Table V: customized full-pipeline accelerator. ----
    baselines::FullPipelineModel full(cost_model);
    auto pipe = full.Evaluate(w, budget);
    bench::PrintHeader("Table V: full-pipeline accelerator (one PU per layer)");
    if (pipe.ok) {
        double max_stage = 0.0;
        for (int l = 0; l < w.NumLayers(); ++l) {
            bench::PrintRow(
                w.layers[static_cast<size_t>(l)].name,
                {bench::Fmt(pipe.stage_latency_seconds[static_cast<size_t>(l)] * 1e3,
                            "%.3f")});
            max_stage = std::max(max_stage,
                                 pipe.stage_latency_seconds[static_cast<size_t>(l)]);
        }
        std::printf("dominant stage: %.2f ms, PE utilization %.1f%% "
                    "(paper: 5.83 ms, 78.1%%)\n",
                    max_stage * 1e3, 100.0 * pipe.pe_utilization);
    } else {
        std::printf("infeasible at this budget\n");
    }

    // ---- Table VI: the AutoSeg SPA accelerator. ----
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    options.extra_segment_candidates = {1, 2};
    autoseg::Engine engine(cost_model, options);
    auto spa = engine.Run(w, budget, alloc::DesignGoal::kLatency);
    bench::PrintHeader("Table VI: AutoSeg SPA accelerator (4 PUs)");
    if (spa.ok) {
        std::printf("config: %s\n", spa.alloc.config.ToString().c_str());
        for (int s = 0; s < spa.assignment.num_segments; ++s) {
            std::printf("segment %d:\n", s + 1);
            for (int n = 0; n < spa.assignment.num_pus; ++n) {
                std::string layers;
                for (int l = 0; l < w.NumLayers(); ++l) {
                    if (spa.assignment.segment_of[static_cast<size_t>(l)] == s &&
                        spa.assignment.pu_of[static_cast<size_t>(l)] == n) {
                        layers += w.layers[static_cast<size_t>(l)].name + " ";
                    }
                }
                const auto& eval = spa.alloc.segments[static_cast<size_t>(s)];
                std::printf("  PU-%d (%s): cycles=%lld  layers: %s\n", n + 1,
                            hw::DataflowName(
                                eval.dataflow[static_cast<size_t>(n)]),
                            static_cast<long long>(
                                eval.pu_cycles[static_cast<size_t>(n)]),
                            layers.c_str());
            }
        }
        std::printf("overall: %.2f ms, PE utilization %.1f%% "
                    "(paper: 5.11 ms, 89.6%%)\n",
                    spa.alloc.latency_seconds * 1e3,
                    100.0 * spa.alloc.pe_utilization);
        std::printf("speedup vs no-pipeline: %.2fx (paper: 1.26x)\n",
                    base.latency_seconds / spa.alloc.latency_seconds);
        if (pipe.ok)
            std::printf("speedup vs full-pipeline: %.2fx (paper: 1.14x)\n",
                        pipe.latency_seconds / spa.alloc.latency_seconds);
    }

    // ---- Fig. 14: memory access of the three designs. ----
    bench::PrintHeader("Fig 14: DRAM access per frame (MB)");
    bench::PrintRow("design", {"MB"});
    bench::PrintRow("no-pipeline",
                    {bench::Fmt(static_cast<double>(base.dram_bytes) / 1048576.0)});
    if (pipe.ok)
        bench::PrintRow("full-pipeline", {bench::Fmt(
                            static_cast<double>(pipe.dram_bytes) / 1048576.0)});
    if (spa.ok) {
        int64_t spa_bytes = 0;
        for (int s = 0; s < spa.assignment.num_segments; ++s)
            spa_bytes += seg::SegmentAccessBytes(w, spa.assignment, s);
        bench::PrintRow("SPA", {bench::Fmt(static_cast<double>(spa_bytes) /
                                           1048576.0)});
    }
}

void
BM_CaseStudyEngine(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload w = nn::ExtractWorkload(nn::BuildAlexNetConvTower());
    autoseg::SegmentationCache cache;
    for (auto _ : state) {
        auto result = engine.Run(w, Zc706With768Pes(), alloc::DesignGoal::kLatency,
                                 &cache);
        benchmark::DoNotOptimize(result.alloc.latency_seconds);
    }
}
BENCHMARK(BM_CaseStudyEngine)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

SPA_BENCH_MAIN(PrintCaseStudy)
