// Microbenchmark: raw candidate-evaluation throughput of the
// incremental allocation engine. Evaluates a fixed pool of ResNet-50
// segmentation candidates through the full Alg. 1 + metrics path at
// jobs = 1/4/8 and reports candidate-evals/sec, plus the
// fixed-configuration evaluation rate of the AssignmentIndex-backed
// path against the retained naive-scan reference oracle. Design
// points are identical across jobs widths and across the two
// fixed-config paths; only the rates differ.

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/evaluator.h"
#include "nn/models.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

constexpr int kNumPus = 4;

std::vector<seg::Assignment>
CandidatePool(const nn::Workload& w)
{
    seg::HeuristicSegmenter segmenter;
    std::vector<seg::Assignment> pool;
    for (int s = 1; s <= 8; ++s) {
        seg::Assignment a;
        if (segmenter.Solve(w, s, kNumPus, a))
            pool.push_back(a);
    }
    return pool;
}

double
SecondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

void
RunCandidateRate(const nn::Workload& w,
                 const std::vector<seg::Assignment>& pool_candidates)
{
    const hw::Platform budget = hw::NvdlaLargeBudget();
    bench::PrintHeader("Candidate evaluations/sec (resnet50, full Alg. 1 + "
                       "metrics)");
    bench::PrintRow("jobs", {"evals/s", "evals", "seconds"});
    for (int jobs : {1, 4, 8}) {
        cost::CostModel cost_model;
        eval::Evaluator evaluator(cost_model, eval::EvalOptions{jobs, true});
        // Warm the cost memo once so every timed round sees the same
        // steady-state cache behaviour.
        evaluator.EvaluateCandidates(w, pool_candidates, budget,
                                     alloc::DesignGoal::kLatency);
        constexpr int kRounds = 400;
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < kRounds; ++r)
            evaluator.EvaluateCandidates(w, pool_candidates, budget,
                                         alloc::DesignGoal::kLatency);
        const double seconds = SecondsSince(start);
        const double evals =
            static_cast<double>(kRounds * pool_candidates.size());
        const double rate = evals / seconds;
        bench::PrintRow(std::to_string(jobs),
                        {bench::Fmt(rate, "%.0f"), bench::Fmt(evals, "%.0f"),
                         bench::Fmt(seconds, "%.3f")});
        bench::SetMetric("resnet50.jobs" + std::to_string(jobs) +
                             ".candidate_evals_per_sec",
                         rate);
    }
}

void
RunFixedConfigRate(const nn::Workload& w,
                   const std::vector<seg::Assignment>& pool_candidates)
{
    // Indexed evaluation vs the naive-scan oracle on one fixed design
    // point: same results, different asymptotics.
    const hw::Platform budget = hw::NvdlaLargeBudget();
    cost::CostModel cost_model;
    alloc::Allocator allocator{cost_model};
    const seg::Assignment& a = pool_candidates.back();
    const auto allocated =
        allocator.Allocate(w, a, budget, alloc::DesignGoal::kLatency);
    if (!allocated.ok)
        return;

    constexpr int kRounds = 20000;
    const seg::AssignmentIndex index(w, a);
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < kRounds; ++r)
        allocator.Evaluate(w, index, allocated.config);
    const double indexed_s = SecondsSince(start);

    start = std::chrono::steady_clock::now();
    for (int r = 0; r < kRounds; ++r)
        allocator.EvaluateReference(w, a, allocated.config);
    const double reference_s = SecondsSince(start);

    bench::PrintHeader("Fixed-config evaluations/sec (resnet50)");
    bench::PrintRow("path", {"evals/s"});
    bench::PrintRow("indexed", {bench::Fmt(kRounds / indexed_s, "%.0f")});
    bench::PrintRow("reference", {bench::Fmt(kRounds / reference_s, "%.0f")});
    bench::SetMetric("resnet50.indexed_evals_per_sec", kRounds / indexed_s);
    bench::SetMetric("resnet50.reference_evals_per_sec",
                     kRounds / reference_s);
}

void
PrintMicrobench()
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildResNet50());
    const std::vector<seg::Assignment> pool_candidates = CandidatePool(w);
    if (pool_candidates.empty())
        return;
    RunCandidateRate(w, pool_candidates);
    RunFixedConfigRate(w, pool_candidates);
    std::printf("\n(rates are machine-dependent; design points are identical "
                "for every jobs value and for indexed vs reference)\n");
}

void
BM_CandidateEvaluation(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildResNet50());
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model, eval::EvalOptions{1, true});
    seg::HeuristicSegmenter segmenter;
    seg::Assignment a;
    segmenter.Solve(w, 4, kNumPus, a);
    const hw::Platform budget = hw::NvdlaLargeBudget();
    for (auto _ : state) {
        auto r = evaluator.EvaluateCandidate(w, a, budget,
                                             alloc::DesignGoal::kLatency);
        benchmark::DoNotOptimize(r.alloc.latency_seconds);
    }
}
BENCHMARK(BM_CandidateEvaluation);

}  // namespace

SPA_BENCH_MAIN(PrintMicrobench)
