// Table III: FPGA comparison. AutoSeg regenerates a throughput-goal
// SPA design per (model, device) and prints it next to the published
// baseline rows and the paper's own numbers. Absolute GOP/s depends on
// our analytic substrate; the comparison shape (who wins, DSP
// efficiency ordering) is the reproduction target.

#include "autoseg/autoseg.h"
#include "baselines/published.h"
#include "bench/bench_util.h"
#include "nn/models.h"

namespace {

using namespace spa;

struct OursCase
{
    const char* model;
    const char* device;
};

const OursCase kOurs[] = {
    {"alexnet", "7z045"},      {"alexnet", "ku115"},
    {"vgg16", "zu3eg"},        {"vgg16", "ku115"},
    {"resnet152", "ku115"},    {"mobilenet_v2", "zu3eg"},
    {"mobilenet_v2", "7z045"}, {"mobilenet_v2", "ku115"},
    {"inception_v1", "zu3eg"}, {"inception_v1", "ku115"},
    {"squeezenet", "zu3eg"},   {"squeezenet", "7z045"},
    {"squeezenet", "ku115"},
};

void
PrintTable3()
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {2, 3, 4, 6};
    autoseg::Engine engine(cost_model, options);
    autoseg::SegmentationCache cache;

    bench::PrintHeader("Table III: regenerated SPA designs (ours)");
    bench::PrintRow("model@device",
                    {"DSPs", "BRAM36", "GOP/s", "DSP eff", "batch"}, 28);
    for (const auto& c : kOurs) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(c.model));
        const hw::Platform device = hw::PlatformByName(c.device);
        auto result = engine.Run(w, device, alloc::DesignGoal::kThroughput, &cache);
        if (!result.ok) {
            bench::PrintRow(std::string(c.model) + "@" + c.device, {"n/a"}, 28);
            continue;
        }
        const auto usage = hw::FpgaResourceUsage(result.alloc.config);
        const double gops = result.alloc.throughput_fps *
                            static_cast<double>(w.TotalOps()) * 2.0 / 1e9;
        const double peak = static_cast<double>(usage.dsps) * device.freq_ghz * 4.0;
        bench::PrintRow(std::string(c.model) + "@" + c.device,
                        {std::to_string(usage.dsps), std::to_string(usage.bram36),
                         bench::Fmt(gops, "%.0f"),
                         bench::Fmt(100.0 * gops / peak, "%.1f%%"),
                         std::to_string(result.alloc.config.batch)},
                        28);
        const std::string key = std::string(c.model) + "@" + c.device;
        bench::SetMetric(key + ".gops", gops);
        bench::SetMetric(key + ".dsp_efficiency", gops / peak);
        bench::SetMetric(key + ".explored",
                         static_cast<int64_t>(result.explored.size()));
    }

    bench::PrintHeader("Table III: published baseline rows (literature)");
    bench::PrintRow("design / model@device",
                    {"MHz", "DSPs", "GOP/s", "DSP eff"}, 36);
    for (const auto& r : baselines::PublishedFpgaRows()) {
        const double eff = r.dsp_eff > 0.0 ? r.dsp_eff : r.DerivedDspEff();
        bench::PrintRow(r.design + " / " + r.model + "@" + r.device,
                        {bench::Fmt(r.freq_mhz, "%.0f"), std::to_string(r.dsps),
                         bench::Fmt(r.perf_gops, "%.0f"),
                         bench::Fmt(100.0 * eff, "%.1f%%")},
                        36);
    }

    bench::PrintHeader("Table III: the paper's SPA rows (reference)");
    bench::PrintRow("model@device", {"MHz", "DSPs", "GOP/s", "DSP eff"}, 36);
    for (const auto& r : baselines::PaperSpaRows()) {
        const double eff = r.dsp_eff > 0.0 ? r.dsp_eff : r.DerivedDspEff();
        bench::PrintRow(r.model + "@" + r.device,
                        {bench::Fmt(r.freq_mhz, "%.0f"), std::to_string(r.dsps),
                         bench::Fmt(r.perf_gops, "%.0f"),
                         bench::Fmt(100.0 * eff, "%.1f%%")},
                        36);
    }
}

void
BM_ThroughputDesignVgg(benchmark::State& state)
{
    cost::CostModel cost_model;
    autoseg::CoDesignOptions options;
    options.jobs = bench::Jobs();
    options.pu_candidates = {4};
    autoseg::Engine engine(cost_model, options);
    nn::Workload w = nn::ExtractWorkload(nn::BuildVgg16());
    for (auto _ : state) {
        auto result =
            engine.Run(w, hw::Ku115Budget(), alloc::DesignGoal::kThroughput);
        benchmark::DoNotOptimize(result.alloc.throughput_fps);
    }
}
BENCHMARK(BM_ThroughputDesignVgg)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

SPA_BENCH_MAIN(PrintTable3)
