// Fig. 3: CTC ratio of SqueezeNet / MobileNetV2 / GoogleNet /
// EfficientNet-B0 under no-pipeline, segment-grained pipeline (the
// paper's even per-model splits: 6/3/6/5 layers), and full pipeline.

#include "bench/bench_util.h"
#include "nn/models.h"
#include "seg/assignment.h"

namespace {

using namespace spa;

struct Fig3Case
{
    const char* model;
    int layers_per_segment;  // the paper's even split
};

const Fig3Case kCases[] = {
    {"squeezenet", 6},
    {"mobilenet_v2", 3},
    {"inception_v1", 6},
    {"efficientnet_b0", 5},
};

double
NoPipelineCtc(const nn::Workload& w)
{
    int64_t ops = 0, access = 0;
    for (const auto& l : w.layers) {
        ops += l.ops;
        access += l.AccessBytes();
    }
    return static_cast<double>(ops) / static_cast<double>(access);
}

double
SegmentCtc(const nn::Workload& w, int layers_per_segment)
{
    seg::Assignment a = seg::EvenSegmentation(w, layers_per_segment, 1);
    seg::SegmentMetrics m = seg::ComputeMetrics(w, a);
    // Model-level CTC of the segmented execution.
    int64_t ops = 0, access = 0;
    for (int s = 0; s < a.num_segments; ++s) {
        ops += m.seg_ops[static_cast<size_t>(s)];
        access += m.seg_access[static_cast<size_t>(s)];
    }
    return static_cast<double>(ops) / static_cast<double>(access);
}

double
FullPipelineCtc(const nn::Workload& w)
{
    // Everything in one segment: weights + model IO only.
    seg::Assignment a = seg::SingleSegmentSinglePu(w);
    seg::SegmentMetrics m = seg::ComputeMetrics(w, a);
    return m.seg_ctc[0];
}

void
PrintFig3()
{
    bench::PrintHeader("Fig 3: CTC ratio by implementation (OPs/Byte)");
    bench::PrintRow("model", {"no-pipe", "segment", "full-pipe", "seg/no-pipe"});
    for (const auto& c : kCases) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(c.model));
        const double none = NoPipelineCtc(w);
        const double segmented = SegmentCtc(w, c.layers_per_segment);
        const double full = FullPipelineCtc(w);
        bench::PrintRow(c.model, {bench::Fmt(none), bench::Fmt(segmented),
                                  bench::Fmt(full), bench::Fmt(segmented / none)});
    }
    std::printf("(segment splits: squeezenet=6, mobilenet_v2=3, inception_v1=6, "
                "efficientnet_b0=5 layers per segment, as in the paper)\n");
}

void
BM_SegmentMetrics(benchmark::State& state)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::Assignment a = seg::EvenSegmentation(w, 6, 2);
    for (auto _ : state) {
        auto m = seg::ComputeMetrics(w, a);
        benchmark::DoNotOptimize(m.min_ctc);
    }
}
BENCHMARK(BM_SegmentMetrics);

}  // namespace

SPA_BENCH_MAIN(PrintFig3)
