// Ablation: the inter-PU fabric choice. Compares the (pruned) Benes
// network the paper adopts against a full crossbar and against no
// reconfigurable fabric at all (fixed neighbour chain), in area,
// transfer energy, and pattern coverage across the segment patterns
// real segmentations produce.

#include <map>
#include <set>

#include "bench/bench_util.h"
#include "nn/models.h"
#include "noc/benes.h"
#include "noc/crossbar.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

/** Collects the per-segment comm patterns of a segmented model. */
std::vector<std::vector<noc::RouteRequest>>
SegmentPatterns(const char* model, int segments, int pus)
{
    nn::Workload w = nn::ExtractWorkload(nn::BuildModel(model));
    seg::HeuristicSegmenter segmenter;
    seg::Assignment a;
    std::vector<std::vector<noc::RouteRequest>> patterns;
    if (!segmenter.Solve(w, segments, pus, a))
        return patterns;
    for (int s = 0; s < segments; ++s) {
        std::map<int, std::vector<int>> fanout;
        for (const auto& comm : seg::SegmentComms(w, a, s))
            fanout[comm.src_pu].push_back(comm.dst_pu);
        std::vector<noc::RouteRequest> requests;
        for (auto& [src, dsts] : fanout)
            requests.push_back({src, dsts});
        if (!requests.empty())
            patterns.push_back(requests);
    }
    return patterns;
}

void
PrintAblation()
{
    bench::PrintHeader("Ablation: inter-PU fabric choice");
    bench::PrintRow("ports",
                    {"benes mm2", "pruned mm2", "xbar mm2", "benes nodes"});
    for (int n : {4, 8, 16, 32}) {
        noc::BenesNetwork benes(n);
        noc::Crossbar xbar(n);
        // Prune against the patterns of a real segmented model (pad the
        // PU count pattern set with the neighbour chain).
        std::vector<noc::BenesConfig> configs;
        if (n == 4) {
            for (const auto& pattern : SegmentPatterns("squeezenet", 4, 4)) {
                std::vector<noc::BenesConfig> phases;
                if (benes.RoutePhased(pattern, phases))
                    for (const auto& cfg : phases)
                        configs.push_back(cfg);
            }
        }
        std::vector<noc::RouteRequest> chain;
        for (int i = 0; i + 1 < n; ++i)
            chain.push_back({i, {i + 1}});
        noc::BenesConfig chain_cfg;
        if (benes.Route(chain, chain_cfg))
            configs.push_back(chain_cfg);
        const auto prune = benes.Prune(configs);
        const double full_area =
            benes.NumNodes() * hw::DefaultTech().benes_node_area_um2 / 1e6;
        bench::PrintRow(std::to_string(n),
                        {bench::Fmt(full_area, "%.4f"),
                         bench::Fmt(benes.PrunedAreaMm2(prune), "%.4f"),
                         bench::Fmt(xbar.AreaMm2(), "%.4f"),
                         std::to_string(benes.NumNodes())});
    }

    bench::PrintHeader("Ablation: transfer energy (pJ per KB)");
    bench::PrintRow("ports", {"benes", "crossbar"});
    for (int n : {4, 8, 16, 32}) {
        noc::BenesNetwork benes(n);
        noc::Crossbar xbar(n);
        bench::PrintRow(std::to_string(n),
                        {bench::Fmt(benes.TransferEnergyPj(1024.0), "%.1f"),
                         bench::Fmt(xbar.TransferEnergyPj(1024.0), "%.1f")});
    }

    // Pattern coverage: the fixed neighbour chain cannot express the
    // branchy patterns real segmentations need; Benes and the crossbar
    // route them all.
    bench::PrintHeader("Ablation: pattern coverage over real segmentations");
    int total = 0, chain_ok = 0, benes_ok = 0, xbar_ok = 0;
    for (const char* model : {"squeezenet", "mobilenet_v2", "inception_v1"}) {
        for (const auto& pattern : SegmentPatterns(model, 4, 4)) {
            ++total;
            noc::BenesNetwork benes(4);
            std::vector<noc::BenesConfig> phases;
            benes_ok += benes.RoutePhased(pattern, phases);
            noc::Crossbar xbar(4);
            std::vector<int> selected;
            xbar_ok += xbar.Route(pattern, selected);
            bool chain_covers = true;
            for (const auto& r : pattern)
                for (int d : r.dsts)
                    chain_covers &= (d == r.src + 1);
            chain_ok += chain_covers;
        }
    }
    std::printf("patterns: %d | neighbour chain: %d | benes: %d | crossbar: %d\n",
                total, chain_ok, benes_ok, xbar_ok);
}

void
BM_BenesVsCrossbarRouting(benchmark::State& state)
{
    noc::BenesNetwork benes(8);
    std::vector<noc::RouteRequest> reqs{{0, {1}}, {1, {2, 3}}, {3, {4}}, {4, {7}}};
    for (auto _ : state) {
        noc::BenesConfig cfg;
        benchmark::DoNotOptimize(benes.Route(reqs, cfg));
    }
}
BENCHMARK(BM_BenesVsCrossbarRouting);

}  // namespace

SPA_BENCH_MAIN(PrintAblation)
