// Ablation: analytical fill-factor model vs the discrete-event
// piece-based schedule, plus the sensitivity to the inter-segment
// reconfiguration cost. Validates that the allocator's closed-form
// latency (what the whole search optimizes) tracks the cycle-level
// truth.

#include "bench/bench_util.h"
#include "eval/evaluator.h"
#include "nn/models.h"
#include "pipe/schedule.h"
#include "seg/segmenter.h"

namespace {

using namespace spa;

void
PrintAblation()
{
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model,
                              eval::EvalOptions{bench::Jobs(), true});
    seg::HeuristicSegmenter segmenter;
    pipe::SpaScheduler scheduler(cost_model);

    bench::PrintHeader("Analytical vs discrete-event segment schedule");
    bench::PrintRow("model (S x N)", {"analytic ms", "simulated ms", "ratio"}, 28);
    struct Case
    {
        const char* model;
        int segments, pus;
        hw::Platform budget;
    };
    const Case cases[] = {
        {"squeezenet", 4, 3, hw::NvdlaLargeBudget()},
        {"squeezenet", 4, 3, hw::EyerissBudget()},
        {"mobilenet_v1", 6, 2, hw::NvdlaSmallBudget()},
        {"resnet18", 3, 4, hw::NvdlaLargeBudget()},
        {"alexnet_conv_tower", 2, 4, hw::Zc7045Budget()},
    };
    for (const auto& c : cases) {
        nn::Workload w = nn::ExtractWorkload(nn::BuildModel(c.model));
        seg::Assignment a;
        if (!segmenter.Solve(w, c.segments, c.pus, a))
            continue;
        auto alloc_result =
            evaluator.Allocate(w, a, c.budget, alloc::DesignGoal::kLatency);
        if (!alloc_result.ok)
            continue;
        std::vector<std::vector<hw::Dataflow>> df;
        for (const auto& seg_eval : alloc_result.segments)
            df.push_back(seg_eval.dataflow);
        auto schedule = scheduler.RunModel(w, a, alloc_result.config, df);
        const double simulated = schedule.Seconds(alloc_result.config.freq_ghz);
        bench::PrintRow(std::string(c.model) + " (" + std::to_string(c.segments) +
                            "x" + std::to_string(c.pus) + ")",
                        {bench::Fmt(alloc_result.latency_seconds * 1e3, "%.3f"),
                         bench::Fmt(simulated * 1e3, "%.3f"),
                         bench::Fmt(simulated / alloc_result.latency_seconds)},
                        28);
    }

    bench::PrintHeader("Reconfiguration-cost sensitivity (squeezenet 4x3)");
    bench::PrintRow("reconfig cycles", {"total ms", "bubble share"});
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::Assignment a;
    segmenter.Solve(w, 4, 3, a);
    auto alloc_result = evaluator.Allocate(w, a, hw::NvdlaLargeBudget(),
                                           alloc::DesignGoal::kLatency);
    std::vector<std::vector<hw::Dataflow>> df;
    for (const auto& seg_eval : alloc_result.segments)
        df.push_back(seg_eval.dataflow);
    for (int64_t reconfig : {0LL, 64LL, 1024LL, 16384LL, 262144LL}) {
        pipe::SpaScheduler s(cost_model, reconfig);
        auto schedule = s.RunModel(w, a, alloc_result.config, df);
        bench::PrintRow(std::to_string(reconfig),
                        {bench::Fmt(schedule.Seconds(alloc_result.config.freq_ghz) *
                                    1e3, "%.3f"),
                         bench::Fmt(100.0 *
                                        static_cast<double>(schedule.reconfig_cycles) /
                                        static_cast<double>(schedule.total_cycles),
                                    "%.2f%%")});
    }
    std::printf("(single-cycle clockless Benes muxes keep the real bubble tiny)\n");
}

void
BM_DiscreteEventSchedule(benchmark::State& state)
{
    cost::CostModel cost_model;
    eval::Evaluator evaluator(cost_model, eval::EvalOptions{1, true});
    seg::HeuristicSegmenter segmenter;
    nn::Workload w = nn::ExtractWorkload(nn::BuildSqueezeNet());
    seg::Assignment a;
    segmenter.Solve(w, 4, 3, a);
    auto alloc_result = evaluator.Allocate(w, a, hw::NvdlaLargeBudget(),
                                           alloc::DesignGoal::kLatency);
    std::vector<std::vector<hw::Dataflow>> df;
    for (const auto& seg_eval : alloc_result.segments)
        df.push_back(seg_eval.dataflow);
    pipe::SpaScheduler scheduler(cost_model);
    for (auto _ : state) {
        auto schedule = scheduler.RunModel(w, a, alloc_result.config, df);
        benchmark::DoNotOptimize(schedule.total_cycles);
    }
}
BENCHMARK(BM_DiscreteEventSchedule)->Unit(benchmark::kMillisecond);

}  // namespace

SPA_BENCH_MAIN(PrintAblation)
