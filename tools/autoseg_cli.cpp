// autoseg: command-line front end for the whole flow.
//
//   autoseg --model squeezenet --platform eyeriss --goal latency
//   autoseg --model-json my_net.json --platform ku115 --goal throughput
//           --record design.json --dot design.dot --rtl rtl_out/
//   autoseg --model alexnet --platform eyeriss --stats
//           --stats-out stats.json --trace-out trace.json
//
// Runs segmentation + allocation, prints the design summary, and
// optionally writes the machine-readable record, a Graphviz view of the
// segmentation, the generated SystemVerilog bundle, the search-stack
// telemetry (stats registry) and a Chrome trace of the search.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include <chrono>

#include "autoseg/autoseg.h"
#include "common/logging.h"
#include "common/util.h"
#include "autoseg/energy.h"
#include "autoseg/record.h"
#include "cost/profile.h"
#include "json/json.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "nn/loader.h"
#include "nn/models.h"
#include "rtl/emit.h"
#include "seg/dot.h"

using namespace spa;

namespace {

void
PrintUsage()
{
    std::printf(
        "usage: autoseg --model <zoo-name> | --model-json <file.json>\n"
        "               --platform <eyeriss|nvdla_small|nvdla_large|edgetpu|\n"
        "                           zu3eg|7z045|ku115>\n"
        "               [--goal latency|throughput]   (default latency)\n"
        "               [--pus N[,N...]]              PU-count candidates\n"
        "               [--jobs N]                    parallel evaluation width\n"
        "                                             (default: hardware)\n"
        "               [--record out.json]           design record\n"
        "               [--checkpoint ck.json]        crash-safe search checkpoint\n"
        "               [--checkpoint-every N]        pairs between checkpoints\n"
        "               [--resume ck.json]            continue a killed search\n"
        "               [--max-pairs N]               stop after N (S, N) pairs\n"
        "               [--deadline-s SEC]            wall-clock search budget\n"
        "               [--dot out.dot]               segmentation graph\n"
        "               [--rtl out_dir/]              SystemVerilog bundle\n"
        "               [--profile]                   per-layer profile table\n"
        "               [--stats]                     stats table on stderr\n"
        "               [--stats-out out.json]        stats registry as JSON\n"
        "               [--trace-out out.json]        Chrome trace of the search\n"
        "               [--log-timestamps]            elapsed-time log prefix\n"
        "               [--quiet]\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    bool quiet = false;
    bool profile = false;
    bool stats_table = false;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--quiet") {
            quiet = true;
        } else if (key == "--profile") {
            profile = true;
        } else if (key == "--stats") {
            stats_table = true;
        } else if (key == "--log-timestamps") {
            spa::detail::SetLogTimestamps(true);
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (quiet)
        spa::detail::SetQuiet(true);
    if (!args.count("model") && !args.count("model-json")) {
        PrintUsage();
        return 1;
    }

    nn::Graph graph("empty");
    if (args.count("model-json")) {
        // Malformed model files get one diagnostic line (with the byte
        // offset for syntax errors) and a clean nonzero exit.
        StatusOr<nn::Graph> loaded = nn::LoadGraphOr(args["model-json"]);
        if (!loaded.ok()) {
            std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
            return 1;
        }
        graph = std::move(*loaded);
    } else {
        graph = nn::BuildModel(args["model"]);
    }
    nn::Workload workload = nn::ExtractWorkload(graph);
    const hw::Platform platform =
        hw::PlatformByName(args.count("platform") ? args["platform"] : "eyeriss");
    const alloc::DesignGoal goal = args["goal"] == "throughput"
                                       ? alloc::DesignGoal::kThroughput
                                       : alloc::DesignGoal::kLatency;

    cost::CostModel cost_model;
    if (profile) {
        std::printf("%s\n",
                    cost::ProfileWorkload(cost_model, workload, platform)
                        .ToTable()
                        .c_str());
    }
    autoseg::CoDesignOptions options;
    if (args.count("jobs"))
        options.jobs = std::stoi(args["jobs"]);
    if (args.count("checkpoint"))
        options.checkpoint_path = args["checkpoint"];
    if (args.count("checkpoint-every"))
        options.checkpoint_every = std::stoi(args["checkpoint-every"]);
    if (args.count("resume"))
        options.resume_path = args["resume"];
    if (args.count("max-pairs"))
        options.max_pairs = std::stoll(args["max-pairs"]);
    if (args.count("deadline-s"))
        options.deadline = Deadline::AfterSeconds(std::stod(args["deadline-s"]));
    if (args.count("pus")) {
        options.pu_candidates.clear();
        const std::string& list = args["pus"];
        size_t pos = 0;
        while (pos < list.size()) {
            size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            options.pu_candidates.push_back(std::stoi(list.substr(pos, comma - pos)));
            pos = comma + 1;
        }
    }
    const bool tracing = args.count("trace-out") > 0;
    if (tracing)
        obs::TraceSession::Get().Start();
    const auto run_start = std::chrono::steady_clock::now();
    autoseg::Engine engine(cost_model, options);
    autoseg::CoDesignResult result = engine.Run(workload, platform, goal);
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
            .count();
    if (tracing) {
        obs::TraceSession::Get().Stop();
        obs::TraceSession::Get().WriteFile(args["trace-out"]);
    }
    // Publish pool telemetry and derived cache rates before any dump.
    engine.evaluator().FlushStats();
    {
        obs::Registry& r = obs::Registry::Default();
        const auto& cache = engine.evaluator().segmentation_cache();
        r.GetGauge("eval.seg_cache.hit_rate",
                   "hits / lookups of the engine's segmentation cache")
            ->Set(cache.HitRate());
        const cost::CostModel& cm = engine.evaluator().cost_model();
        const int64_t memo_total = cm.MemoHits() + cm.MemoMisses();
        r.GetGauge("cost.memo.hit_rate",
                   "hits / lookups of the compute-cycle memo")
            ->Set(memo_total > 0
                      ? static_cast<double>(cm.MemoHits()) /
                            static_cast<double>(memo_total)
                      : 0.0);
    }
    if (stats_table)
        std::fprintf(stderr, "%s", obs::Registry::Default().DumpTable().c_str());
    if (args.count("stats-out")) {
        json::Object top;
        json::Object run;
        run["model"] = workload.name;
        run["platform"] = platform.name;
        run["goal"] = goal == alloc::DesignGoal::kThroughput ? "throughput"
                                                             : "latency";
        run["jobs"] = engine.evaluator().jobs();
        run["wall_seconds"] = run_seconds;
        run["ok"] = result.ok;
        run["status"] = result.status.ToString();
        run["truncated"] = result.truncated;
        run["pairs_failed"] = result.pairs_failed;
        run["fallbacks"] = result.fallbacks;
        run["failed_candidates"] = result.failed_candidates;
        if (result.ok)
            run["goal_value"] = result.GoalValue(goal);
        // Best-so-far trajectory over the explored (S, N) records, in
        // enumeration order -- what the search "saw" as it went.
        json::Array trajectory;
        double best = 1e30;
        for (const auto& rec : result.explored) {
            if (!rec.feasible)
                continue;
            const double v = goal == alloc::DesignGoal::kThroughput
                                 ? (rec.throughput_fps > 0.0
                                        ? 1.0 / rec.throughput_fps
                                        : 1e30)
                                 : rec.latency_seconds;
            if (v < best) {
                best = v;
                json::Object point;
                point["num_segments"] = rec.num_segments;
                point["num_pus"] = rec.num_pus;
                point["goal_value"] = v;
                trajectory.push_back(json::Value(std::move(point)));
            }
        }
        run["explored"] = static_cast<int64_t>(result.explored.size());
        run["best_trajectory"] = json::Value(std::move(trajectory));
        top["run"] = json::Value(std::move(run));
        top["stats"] = obs::Registry::Default().ToJson();
        json::SaveFile(args["stats-out"], json::Value(std::move(top)));
        std::fprintf(stderr, "stats:      %s\n", args["stats-out"].c_str());
    }
    if (!result.status.ok()) {
        // A degraded-but-successful run reports its first failure and
        // continues; a failed run exits nonzero with the same line.
        std::fprintf(stderr, "search degraded: %s\n",
                     result.status.ToString().c_str());
    }
    if (result.fallbacks > 0 || result.failed_candidates > 0 ||
        result.pairs_failed > 0) {
        std::fprintf(stderr,
                     "search health: %d solver fallbacks, %d candidates "
                     "skipped, %d pairs failed%s\n",
                     result.fallbacks, result.failed_candidates,
                     result.pairs_failed,
                     result.truncated ? ", walk truncated" : "");
    }
    if (!result.ok) {
        std::fprintf(stderr, "no feasible SPA design for %s on %s\n",
                     workload.name.c_str(), platform.name.c_str());
        return 2;
    }

    std::printf("model:      %s (%d compute layers, %.2f GMACs)\n",
                workload.name.c_str(), workload.NumLayers(),
                static_cast<double>(workload.TotalOps()) / 1e9);
    std::printf("platform:   %s\n", platform.name.c_str());
    std::printf("design:     %d segments x %d PUs\n", result.assignment.num_segments,
                result.assignment.num_pus);
    std::printf("hardware:   %s\n", result.alloc.config.ToString().c_str());
    std::printf("metrics:    min CTC %.1f OPs/B, SOD %.3f\n", result.metrics.min_ctc,
                result.metrics.sod);
    std::printf("latency:    %.3f ms\n", result.alloc.latency_seconds * 1e3);
    std::printf("throughput: %.1f fps (batch %ld)\n", result.alloc.throughput_fps,
                static_cast<long>(result.alloc.config.batch));
    std::printf("PE util:    %.1f%%\n", 100.0 * result.alloc.pe_utilization);
    auto energy =
        autoseg::EvaluateSpaEnergy(cost_model, workload, result.assignment,
                                   result.alloc);
    std::printf("energy:     %.3f mJ/frame (DRAM %.0f%%, buffers %.0f%%, "
                "MACs %.0f%%, other %.1f%%)\n",
                energy.TotalPj() / 1e9, 100.0 * energy.dram_pj / energy.TotalPj(),
                100.0 * energy.buffer_pj / energy.TotalPj(),
                100.0 * energy.mac_pj / energy.TotalPj(),
                100.0 * energy.other_pj / energy.TotalPj());

    if (args.count("record")) {
        autoseg::SaveRecord(args["record"], workload, result);
        std::printf("record:     %s\n", args["record"].c_str());
    }
    if (args.count("dot")) {
        const Status written = WriteFileAtomicOr(
            args["dot"], seg::SegmentationToDot(workload, result.assignment));
        if (!written.ok())
            SPA_FATAL(written.message());
        std::printf("dot:        %s\n", args["dot"].c_str());
    }
    if (args.count("rtl")) {
        noc::BenesNetwork fabric(std::max(2, result.assignment.num_pus));
        std::vector<noc::BenesConfig> configs;
        for (int s = 0; s < result.assignment.num_segments; ++s) {
            std::map<int, std::vector<int>> fanout;
            for (const auto& comm :
                 seg::SegmentComms(workload, result.assignment, s)) {
                fanout[comm.src_pu].push_back(comm.dst_pu);
            }
            std::vector<noc::RouteRequest> requests;
            for (auto& [src, dsts] : fanout)
                requests.push_back({src, dsts});
            std::vector<noc::BenesConfig> phases;
            if (!requests.empty() && fabric.RoutePhased(requests, phases))
                for (const auto& cfg : phases)
                    configs.push_back(cfg);
        }
        rtl::RtlBundle bundle =
            rtl::GenerateRtl(result.alloc.config, result.assignment.num_segments,
                             fabric, configs);
        rtl::WriteBundle(bundle, args["rtl"]);
        std::printf("rtl:        %s (%zu files, %lld lines)\n", args["rtl"].c_str(),
                    bundle.files.size(),
                    static_cast<long long>(bundle.TotalLines()));
    }
    return 0;
}
