// obs_check: schema validator for the serving observability artifacts.
//
//   obs_check --request-log F          NDJSON wide-event request log
//             [--metrics F]            Prometheus text exposition
//             [--flight F]             flight-recorder post-mortem JSON
//             [--expect-trace HEX]...  trace id that must appear in every
//                                      artifact given (repeatable)
//             [--min-events N]         request log must hold >= N events
//
// Used by the ci.sh `obs` stage: after driving a mixed workload through
// autoseg_served it checks that (a) every request-log line is a
// well-formed wide event, (b) the metrics exposition parses and carries
// the spa_ families, (c) the flight dump reconstructs timelines whose
// trace ids are consistent with the request log, and (d) specific trace
// ids (e.g. the one a provoked fault killed) show up everywhere. Exit 0
// on success; prints one line per violation and exits 1 otherwise.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.h"

using namespace spa;

namespace {

int g_failures = 0;

void
Fail(const std::string& what)
{
    std::fprintf(stderr, "obs_check: %s\n", what.c_str());
    ++g_failures;
}

bool
IsHexTraceId(const std::string& s)
{
    if (s.empty() || s.size() > 16)
        return false;
    for (char c : s)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** One wide event: required fields, right types, sane stage timings. */
void
CheckEvent(const json::Value& e, size_t line_no, std::set<std::string>& traces)
{
    const std::string where = "request log line " + std::to_string(line_no);
    if (!e.IsObject()) {
        Fail(where + ": not a JSON object");
        return;
    }
    const char* string_fields[] = {"trace_id", "method", "status"};
    for (const char* f : string_fields)
        if (!e.Has(f) || !e.At(f).IsString())
            Fail(where + ": missing string field '" + f + "'");
    const char* int_fields[] = {"ts_ms", "cache_hits", "cache_misses",
                                "deadline_ticks", "fallbacks"};
    for (const char* f : int_fields)
        if (!e.Has(f) || !e.At(f).IsNumber())
            Fail(where + ": missing numeric field '" + f + "'");
    if (!e.Has("ok") || !e.At("ok").IsBool())
        Fail(where + ": missing bool field 'ok'");
    const std::string trace = e.GetString("trace_id", "");
    if (trace.size() != 16 || !IsHexTraceId(trace))
        Fail(where + ": trace_id '" + trace + "' is not 16 hex chars");
    else
        traces.insert(trace);
    if (!e.Has("stage_ns") || !e.At("stage_ns").IsObject()) {
        Fail(where + ": missing object field 'stage_ns'");
        return;
    }
    const json::Value& stages = e.At("stage_ns");
    for (const char* f : {"parse_ns", "solve_ns", "total_ns"})
        if (!stages.Has(f) || !stages.At(f).IsNumber())
            Fail(where + ": stage_ns missing '" + f + "'");
    const int64_t total = stages.GetInt("total_ns", -1);
    if (total < 0 ||
        total < stages.GetInt("parse_ns", 0) + stages.GetInt("solve_ns", 0))
        Fail(where + ": stage_ns.total_ns smaller than its parts");
}

/** Every line parses; every event passes CheckEvent. */
std::set<std::string>
CheckRequestLog(const std::string& path, int64_t min_events)
{
    std::set<std::string> traces;
    std::ifstream in(path);
    if (!in) {
        Fail("cannot open request log '" + path + "'");
        return traces;
    }
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        json::ParseResult parsed = json::Parse(line);
        if (!parsed.ok) {
            Fail("request log line " + std::to_string(line_no) +
                 ": bad JSON: " + parsed.error);
            continue;
        }
        CheckEvent(parsed.value, line_no, traces);
    }
    if (static_cast<int64_t>(line_no) < min_events)
        Fail("request log holds " + std::to_string(line_no) +
             " events, expected >= " + std::to_string(min_events));
    return traces;
}

/**
 * Prometheus text exposition 0.0.4: comment lines start with '#',
 * sample lines are `name{labels} value` or `name value`. Requires the
 * core spa_ families the daemon always exports.
 */
std::set<std::string>
CheckMetrics(const std::string& path,
             const std::vector<std::string>& required_families)
{
    std::set<std::string> exemplar_traces;
    std::ifstream in(path);
    if (!in) {
        Fail("cannot open metrics exposition '" + path + "'");
        return exemplar_traces;
    }
    std::set<std::string> families;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        const std::string where = "metrics line " + std::to_string(line_no);
        const size_t brace = line.find('{');
        const size_t space = line.find(' ');
        const size_t name_end = std::min(brace, space);
        if (name_end == std::string::npos || name_end == 0) {
            Fail(where + ": no metric name in '" + line + "'");
            continue;
        }
        const std::string name = line.substr(0, name_end);
        for (char c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
                c != ':')
                Fail(where + ": bad character in metric name '" + name + "'");
        families.insert(name);
        const size_t value_at = line.rfind(' ');
        if (value_at == std::string::npos || value_at + 1 >= line.size()) {
            Fail(where + ": no sample value in '" + line + "'");
            continue;
        }
        try {
            (void)std::stod(line.substr(value_at + 1));
        } catch (const std::exception&) {
            Fail(where + ": sample value '" + line.substr(value_at + 1) +
                 "' is not a number");
        }
        if (name == "spa_slow_request_ns") {
            const size_t tag = line.find("trace_id=\"");
            if (tag != std::string::npos) {
                const size_t begin = tag + 10;
                const size_t end = line.find('"', begin);
                if (end != std::string::npos)
                    exemplar_traces.insert(line.substr(begin, end - begin));
            }
        }
    }
    for (const std::string& family : required_families)
        if (!families.count(family))
            Fail("metrics exposition lacks required family '" + family + "'");
    return exemplar_traces;
}

/** Flight dump: document shape plus per-entry schema. */
std::set<std::string>
CheckFlightDump(const std::string& path)
{
    std::set<std::string> traces;
    StatusOr<json::Value> doc = json::LoadFileOr(path);
    if (!doc.ok()) {
        Fail("flight dump: " + doc.status().ToString());
        return traces;
    }
    if (!doc->IsObject() || !doc->Has("reason") ||
        !doc->At("reason").IsString() || !doc->Has("dropped") ||
        !doc->At("dropped").IsNumber()) {
        Fail("flight dump: missing reason/dropped header");
        return traces;
    }
    if (!doc->Has("entries") || !doc->At("entries").IsArray()) {
        Fail("flight dump: missing 'entries' array");
        return traces;
    }
    int64_t last_ts = 0;
    size_t index = 0;
    for (const json::Value& e : doc->At("entries").AsArray()) {
        const std::string where = "flight entry " + std::to_string(index++);
        if (!e.IsObject()) {
            Fail(where + ": not an object");
            continue;
        }
        if (!e.Has("ts_ns") || !e.At("ts_ns").IsNumber() || !e.Has("tid") ||
            !e.At("tid").IsNumber() || !e.Has("name") ||
            !e.At("name").IsString())
            Fail(where + ": missing ts_ns/tid/name");
        const std::string kind = e.GetString("kind", "");
        if (kind != "B" && kind != "E" && kind != "I")
            Fail(where + ": kind '" + kind + "' not one of B/E/I");
        const int64_t ts = e.GetInt("ts_ns", 0);
        if (ts < last_ts)
            Fail(where + ": entries not in time order");
        last_ts = ts;
        const std::string trace = e.GetString("trace_id", "");
        if (!trace.empty()) {
            if (!IsHexTraceId(trace))
                Fail(where + ": bad trace_id '" + trace + "'");
            else
                traces.insert(trace);
        }
    }
    if (index == 0)
        Fail("flight dump holds no entries");
    return traces;
}

void
PrintUsage()
{
    std::printf(
        "usage: obs_check [--request-log F]  NDJSON wide-event log\n"
        "                 [--metrics F]      Prometheus exposition text\n"
        "                 [--flight F]       flight-recorder dump JSON\n"
        "                 [--expect-trace HEX]  must appear in every given\n"
        "                                    artifact (repeatable)\n"
        "                 [--require-family NAME]  metric family that must\n"
        "                                    appear (repeatable; default:\n"
        "                                    the serve core families)\n"
        "                 [--min-events N]   request log size floor\n"
        "at least one of --request-log / --metrics is required\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    std::vector<std::string> expected_traces;
    std::vector<std::string> required_families;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key == "--expect-trace" && i + 1 < argc) {
            expected_traces.push_back(argv[++i]);
        } else if (key == "--require-family" && i + 1 < argc) {
            required_families.push_back(argv[++i]);
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!args.count("request-log") && !args.count("metrics")) {
        PrintUsage();
        return 1;
    }
    // A daemon exposition carries the serve core families; expositions
    // from other processes (the dist coordinator tool) name their own
    // families explicitly instead.
    if (required_families.empty())
        required_families = {"spa_serve_requests_ok",
                             "spa_serve_request_ns_count",
                             "spa_serve_queue_wait_ns_count"};

    int64_t min_events = 1;
    if (args.count("min-events"))
        min_events = std::stoll(args["min-events"]);

    std::set<std::string> log_traces;
    if (args.count("request-log"))
        log_traces = CheckRequestLog(args["request-log"], min_events);

    std::set<std::string> exemplar_traces;
    if (args.count("metrics")) {
        exemplar_traces = CheckMetrics(args["metrics"], required_families);
        // Every exemplar names a request the daemon served, so it must
        // have a wide event.
        if (args.count("request-log"))
            for (const std::string& t : exemplar_traces)
                if (!log_traces.count(t))
                    Fail("metrics exemplar trace_id " + t +
                         " has no request-log event");
    }

    std::set<std::string> flight_traces;
    if (args.count("flight")) {
        flight_traces = CheckFlightDump(args["flight"]);
        // Every request-attributed span in the dump belongs to a
        // request the log knows about (rings also hold unattributed
        // spans with no trace_id — those are fine).
        if (args.count("request-log"))
            for (const std::string& t : flight_traces)
                if (!log_traces.count(t))
                    Fail("flight-dump trace_id " + t +
                         " has no request-log event");
        if (flight_traces.empty())
            Fail("flight dump holds no request-attributed spans");
    }

    for (const std::string& t : expected_traces) {
        if (args.count("request-log") && !log_traces.count(t))
            Fail("expected trace_id " + t + " missing from request log");
        if (args.count("flight") && !flight_traces.count(t))
            Fail("expected trace_id " + t + " missing from flight dump");
    }

    if (g_failures > 0) {
        std::fprintf(stderr, "obs_check: %d violation(s)\n", g_failures);
        return 1;
    }
    std::printf("obs_check: ok (%zu traced requests)\n", log_traces.size());
    return 0;
}
