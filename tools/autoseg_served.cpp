// autoseg_served: the co-design daemon.
//
//   autoseg_served --port 7410 --workers 4 --pending 8
//                  --warm-cache /var/tmp/spa_warm.json
//                  --stats-out stats.json
//
// Listens on 127.0.0.1 for newline-delimited JSON co-design requests
// (see src/serve/protocol.h for the wire format), serves them from a
// shared autoseg::Session (one evaluation substrate, shared caches),
// and keeps running until a client sends {"method": "shutdown"} or the
// process receives SIGINT/SIGTERM. With --warm-cache the segmentation
// outcomes and cost-model memo survive restarts: a restarted daemon
// answers repeat workloads from the persisted caches, bitwise-identical
// to a cold run.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "cost/cost.h"
#include "json/json.h"
#include "obs/flight_recorder.h"
#include "obs/stats.h"
#include "serve/server.h"

using namespace spa;

namespace {

serve::Server* g_server = nullptr;

void
OnSignal(int)
{
    // Only an atomic store: the main thread polls the flag in
    // WaitForShutdownRequest and does the actual teardown.
    if (g_server != nullptr)
        g_server->RequestShutdown();
}

void
PrintUsage()
{
    std::printf(
        "usage: autoseg_served [--port N]        (default 0 = ephemeral)\n"
        "                      [--workers N]     concurrent connections "
        "(default 2)\n"
        "                      [--pending N]     admission queue depth "
        "(default 8)\n"
        "                      [--jobs N]        evaluation width per request\n"
        "                      [--idle-timeout-ms N]  close connections idle\n"
        "                                        that long (default 0 = "
        "never)\n"
        "                      [--warm-cache F]  persist caches across "
        "restarts\n"
        "                      [--stats-out F]   write the stats registry on "
        "exit\n"
        "                      [--request-log F] one wide JSON event per "
        "request\n"
        "                      [--flight-recorder F]  post-mortem span dump "
        "on\n"
        "                                        fatal/fault/shutdown\n"
        "                      [--arm-fault site,seed,period]  arm one "
        "injection\n"
        "                                        site (needs a fault-injection "
        "build)\n"
        "                      [--quiet]\n");
}

/** Parses "site,seed,period" and arms that one fault site. */
bool
ArmFault(const std::string& spec)
{
    const size_t first = spec.find(',');
    const size_t second = first == std::string::npos
                              ? std::string::npos
                              : spec.find(',', first + 1);
    if (first == std::string::npos || second == std::string::npos) {
        std::fprintf(stderr,
                     "--arm-fault wants site,seed,period (got '%s')\n",
                     spec.c_str());
        return false;
    }
    const std::string site = spec.substr(0, first);
    uint64_t seed = 0;
    int64_t period = 0;
    try {
        seed = std::stoull(spec.substr(first + 1, second - first - 1));
        period = std::stoll(spec.substr(second + 1));
    } catch (const std::exception&) {
        std::fprintf(stderr, "--arm-fault: bad seed/period in '%s'\n",
                     spec.c_str());
        return false;
    }
    if (site.empty() || period < 1) {
        std::fprintf(stderr,
                     "--arm-fault: site must be non-empty, period >= 1\n");
        return false;
    }
    fault::SetEnabled(true);
    fault::Arm(site, seed, period);
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--quiet") {
            spa::detail::SetQuiet(true);
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }

    serve::ServerOptions options;
    if (args.count("port"))
        options.port = std::stoi(args["port"]);
    if (args.count("workers"))
        options.workers = std::stoi(args["workers"]);
    if (args.count("pending"))
        options.max_pending = std::stoi(args["pending"]);
    if (args.count("idle-timeout-ms"))
        options.idle_timeout_ms = std::stoll(args["idle-timeout-ms"]);
    if (args.count("warm-cache"))
        options.warm_cache_path = args["warm-cache"];
    if (args.count("request-log"))
        options.request_log_path = args["request-log"];
    if (args.count("flight-recorder"))
        options.flight_recorder_path = args["flight-recorder"];
    if (args.count("arm-fault") && !ArmFault(args["arm-fault"]))
        return 1;
    autoseg::SessionOptions session_options;
    if (args.count("jobs"))
        session_options.jobs = std::stoi(args["jobs"]);

    cost::CostModel cost_model;
    serve::Server server(cost_model, options, session_options);
    const Status started = server.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
    }
    // The bound port on stdout, for scripts that asked for an ephemeral
    // one (the test harness and ci.sh parse this line).
    std::printf("PORT %d\n", server.port());
    std::fflush(stdout);

    g_server = &server;
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);

    server.WaitForShutdownRequest();
    // Dump the flight recorder while the rings still hold the final
    // requests' spans — Stop() disarms the recorder. This is the
    // SIGTERM post-mortem path; a clean {"method":"shutdown"} exit
    // writes the same document (reason tells them apart).
    if (!options.flight_recorder_path.empty()) {
        const Status dumped =
            obs::FlightRecorder::Get().DumpNow("shutdown requested");
        if (!dumped.ok())
            std::fprintf(stderr, "%s\n", dumped.ToString().c_str());
    }
    server.Stop();
    g_server = nullptr;

    if (args.count("stats-out")) {
        const Status saved = json::SaveFileOr(
            args["stats-out"], obs::Registry::Default().ToJson());
        if (!saved.ok())
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    }
    return 0;
}
