// autoseg_worker: one member of a distributed-sweep fleet.
//
//   autoseg_worker --port 0 --shard-dir /var/tmp/spa_shards
//
// Serves the shard methods (shard_run / shard_poll / shard_cancel) of
// the loopback JSON protocol — the methods autoseg_served refuses — and
// evaluates one shard of a co-design walk at a time with empty session
// caches (src/dist/worker.h explains why that empties-caches discipline
// is what makes the merged sweep bitwise-identical to a serial run).
//
// A worker is designed to be killed: SIGKILL at any moment leaves at
// worst the last complete shard checkpoint in --shard-dir, and the
// coordinator re-dispatches the orphaned shard (resume=true) to any
// other worker. Restarting a worker on the same port re-joins the
// fleet; the coordinator's revival probe picks it up.

#include <csignal>
#include <cstdio>
#include <map>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "cost/cost.h"
#include "dist/worker.h"
#include "json/json.h"
#include "obs/stats.h"

using namespace spa;

namespace {

dist::WorkerServer* g_worker = nullptr;

void
OnSignal(int)
{
    // Only an atomic store: the main thread polls the flag in
    // WaitForShutdownRequest and does the actual teardown.
    if (g_worker != nullptr)
        g_worker->RequestShutdown();
}

void
PrintUsage()
{
    std::printf(
        "usage: autoseg_worker --shard-dir D    shared shard-checkpoint dir\n"
        "                      [--port N]       (default 0 = ephemeral)\n"
        "                      [--jobs N]       evaluation width per shard\n"
        "                      [--checkpoint-every N]  pairs between shard\n"
        "                                       checkpoint writes (default 4)\n"
        "                      [--idle-timeout-ms N]   close idle connections\n"
        "                      [--control-workers N]   concurrent control\n"
        "                                       connections (default 2)\n"
        "                      [--stats-out F]  write the stats registry on "
        "exit\n"
        "                      [--arm-fault site,seed,period]  arm one "
        "injection\n"
        "                                       site (fault-injection builds)\n"
        "                      [--quiet]\n");
}

/** Parses "site,seed,period" and arms that one fault site. */
bool
ArmFault(const std::string& spec)
{
    const size_t first = spec.find(',');
    const size_t second = first == std::string::npos
                              ? std::string::npos
                              : spec.find(',', first + 1);
    if (first == std::string::npos || second == std::string::npos) {
        std::fprintf(stderr,
                     "--arm-fault wants site,seed,period (got '%s')\n",
                     spec.c_str());
        return false;
    }
    const std::string site = spec.substr(0, first);
    uint64_t seed = 0;
    int64_t period = 0;
    try {
        seed = std::stoull(spec.substr(first + 1, second - first - 1));
        period = std::stoll(spec.substr(second + 1));
    } catch (const std::exception&) {
        std::fprintf(stderr, "--arm-fault: bad seed/period in '%s'\n",
                     spec.c_str());
        return false;
    }
    if (site.empty() || period < 1) {
        std::fprintf(stderr,
                     "--arm-fault: site must be non-empty, period >= 1\n");
        return false;
    }
    fault::SetEnabled(true);
    fault::Arm(site, seed, period);
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--quiet") {
            spa::detail::SetQuiet(true);
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!args.count("shard-dir")) {
        PrintUsage();
        return 1;
    }

    dist::WorkerOptions options;
    options.shard_dir = args["shard-dir"];
    if (args.count("port"))
        options.port = std::stoi(args["port"]);
    if (args.count("jobs"))
        options.jobs = std::stoi(args["jobs"]);
    if (args.count("checkpoint-every"))
        options.checkpoint_every = std::stoi(args["checkpoint-every"]);
    if (args.count("idle-timeout-ms"))
        options.idle_timeout_ms = std::stoll(args["idle-timeout-ms"]);
    if (args.count("control-workers"))
        options.control_workers = std::stoi(args["control-workers"]);
    if (args.count("arm-fault") && !ArmFault(args["arm-fault"]))
        return 1;

    cost::CostModel cost_model;
    dist::WorkerServer worker(cost_model, options);
    const Status started = worker.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
    }
    // The bound port on stdout, for scripts that asked for an ephemeral
    // one (dist_test and ci.sh parse this line, same as autoseg_served).
    std::printf("PORT %d\n", worker.port());
    std::fflush(stdout);

    g_worker = &worker;
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);

    worker.WaitForShutdownRequest();
    worker.Stop();
    g_worker = nullptr;

    if (args.count("stats-out")) {
        const Status saved = json::SaveFileOr(
            args["stats-out"], obs::Registry::Default().ToJson());
        if (!saved.ok())
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    }
    return 0;
}
