// autoseg_coordinator: drives a distributed co-design sweep over a
// fleet of autoseg_worker daemons — or serially, as the byte-compare
// reference the chaos CI stage diffs against.
//
//   autoseg_coordinator --workers 7411,7412,7413,7414
//                       --shard-dir /var/tmp/spa_shards
//                       --zoo --platforms asic,fpga --out dist.json
//   autoseg_coordinator --serial --zoo --platforms asic,fpga
//                       --out serial.json
//
// Every (model, platform) unit is one canonical (S, N) walk; the
// coordinator shards it, leases the shards to workers, survives worker
// deaths (orphan re-dispatch with backoff), steals work from
// stragglers, degrades to local execution when the whole fleet is gone,
// and merges the shard checkpoints into a result bitwise-identical to
// an uninterrupted single-process run. The --out document is built from
// serve::ResultToJson, whose field set and formatting are deterministic
// — a dist run and a --serial run of the same sweep must produce
// byte-identical files, which is exactly what `ci.sh dist` asserts
// while SIGKILLing workers mid-sweep.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "autoseg/session.h"
#include "common/logging.h"
#include "cost/cost.h"
#include "dist/coordinator.h"
#include "dist/shard.h"
#include "hw/platform.h"
#include "json/json.h"
#include "nn/models.h"
#include "nn/workload.h"
#include "obs/stats.h"
#include "serve/protocol.h"

using namespace spa;

namespace {

void
PrintUsage()
{
    std::printf(
        "usage: autoseg_coordinator --shard-dir D\n"
        "           [--workers P1,P2,...]  fleet ports (none = local only)\n"
        "           [--serial]             plain Session runs (reference)\n"
        "           [--models M1,M2,... | --zoo]   (default alexnet)\n"
        "           [--platforms P1,...]   names plus the tokens asic,fpga\n"
        "           [--goal latency|throughput]\n"
        "           [--pus N1,N2,...] [--max-segments N]\n"
        "           [--mip-node-budget N]  deterministic MIP budget\n"
        "           [--shard-pairs N] [--heartbeat-ms N] [--lease-ms N]\n"
        "           [--max-attempts N] [--steal-min-pairs N]\n"
        "           [--no-steal] [--no-local] [--seed N]\n"
        "           [--jobs N] [--checkpoint-every N]\n"
        "           [--out F]              results JSON (byte-comparable)\n"
        "           [--telemetry-out F]    fault-tolerance tally JSON\n"
        "           [--metrics-out F]      Prometheus exposition text\n"
        "           [--quiet]\n");
}

std::vector<std::string>
SplitList(const std::string& list)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > pos)
            out.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Platform names, with "asic" / "fpga" expanding to the Table II rows. */
StatusOr<std::vector<hw::Platform>>
ResolvePlatforms(const std::string& list)
{
    std::vector<hw::Platform> out;
    for (const std::string& name : SplitList(list)) {
        if (name == "asic") {
            for (const hw::Platform& p : hw::AsicBudgets())
                out.push_back(p);
        } else if (name == "fpga") {
            for (const hw::Platform& p : hw::FpgaBudgets())
                out.push_back(p);
        } else {
            try {
                spa::detail::ScopedFailureCapture capture;
                out.push_back(hw::PlatformByName(name));
            } catch (const CapturedFailure& e) {
                return InvalidArgument(std::string("platform: ") + e.what());
            }
        }
    }
    if (out.empty())
        return InvalidArgument("no platforms given");
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    bool serial = false, zoo = false, no_steal = false, no_local = false;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--quiet") {
            spa::detail::SetQuiet(true);
        } else if (key == "--serial") {
            serial = true;
        } else if (key == "--zoo") {
            zoo = true;
        } else if (key == "--no-steal") {
            no_steal = true;
        } else if (key == "--no-local") {
            no_local = true;
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!serial && !args.count("shard-dir")) {
        PrintUsage();
        return 1;
    }

    std::vector<std::string> models;
    if (zoo)
        models = nn::ZooModelNames();
    else if (args.count("models"))
        models = SplitList(args["models"]);
    else
        models = {"alexnet"};
    if (models.empty()) {
        std::fprintf(stderr, "no models given\n");
        return 1;
    }

    StatusOr<std::vector<hw::Platform>> platforms =
        ResolvePlatforms(args.count("platforms") ? args["platforms"]
                                                 : "eyeriss");
    if (!platforms.ok()) {
        std::fprintf(stderr, "%s\n", platforms.status().ToString().c_str());
        return 1;
    }

    const std::string goal_name =
        args.count("goal") ? args["goal"] : "latency";
    alloc::DesignGoal goal = alloc::DesignGoal::kLatency;
    if (goal_name == "throughput")
        goal = alloc::DesignGoal::kThroughput;
    else if (goal_name != "latency") {
        std::fprintf(stderr, "goal must be latency or throughput\n");
        return 1;
    }

    autoseg::CoDesignOptions search;
    if (args.count("pus")) {
        search.pu_candidates.clear();
        for (const std::string& n : SplitList(args["pus"]))
            search.pu_candidates.push_back(std::stoi(n));
    }
    if (args.count("max-segments"))
        search.max_segments = std::stoi(args["max-segments"]);
    if (args.count("mip-node-budget"))
        search.mip_node_budget = std::stoll(args["mip-node-budget"]);

    dist::CoordinatorOptions options;
    options.shard_dir = args["shard-dir"];
    for (const std::string& p : SplitList(
             args.count("workers") ? args["workers"] : ""))
        options.worker_ports.push_back(std::stoi(p));
    if (args.count("shard-pairs"))
        options.shard_pairs = std::stoll(args["shard-pairs"]);
    if (args.count("heartbeat-ms"))
        options.heartbeat_ms = std::stoll(args["heartbeat-ms"]);
    if (args.count("lease-ms"))
        options.lease_ms = std::stoll(args["lease-ms"]);
    if (args.count("max-attempts"))
        options.max_attempts = std::stoi(args["max-attempts"]);
    if (args.count("steal-min-pairs"))
        options.steal_min_pairs = std::stoll(args["steal-min-pairs"]);
    if (args.count("seed"))
        options.seed = std::stoull(args["seed"]);
    if (args.count("jobs"))
        options.jobs = std::stoi(args["jobs"]);
    if (args.count("checkpoint-every"))
        options.checkpoint_every = std::stoi(args["checkpoint-every"]);
    options.allow_steal = !no_steal;
    options.allow_local = !no_local;

    cost::CostModel cost_model;
    autoseg::SessionOptions session_options;
    session_options.jobs = options.jobs;
    // The serial reference: the exact computation the coordinator's
    // merged-checkpoint resume must reproduce byte-for-byte.
    autoseg::Session serial_session(cost_model, session_options);
    dist::Coordinator coordinator(cost_model, options);

    json::Array results;
    int failures = 0;
    for (const std::string& model : models) {
        // One workload build per model; PlatformByName-style capture
        // turns zoo fatal()s into a structured error.
        nn::Workload workload;
        try {
            spa::detail::ScopedFailureCapture capture;
            workload = nn::ExtractWorkload(nn::BuildModel(model));
        } catch (const CapturedFailure& e) {
            std::fprintf(stderr, "model %s: %s\n", model.c_str(), e.what());
            return 1;
        }
        for (const hw::Platform& platform : *platforms) {
            const std::string task =
                dist::TaskId(model, platform.name, goal_name);
            StatusOr<autoseg::CoDesignResult> result = [&] {
                if (serial)
                    return StatusOr<autoseg::CoDesignResult>(
                        serial_session.Run(workload, platform, goal, search));
                return coordinator.RunUnit(model, platform, goal, search);
            }();
            if (!result.ok()) {
                std::fprintf(stderr, "%s: %s\n", task.c_str(),
                             result.status().ToString().c_str());
                ++failures;
                continue;
            }
            if (!result->status.ok()) {
                std::fprintf(stderr, "%s: %s\n", task.c_str(),
                             result->status.ToString().c_str());
                ++failures;
            }
            results.push_back(
                serve::ResultToJson(workload, platform, goal, *result));
            if (!spa::detail::IsQuiet())
                std::printf("UNIT %s %s\n", task.c_str(),
                            result->status.ok() ? "ok" : "failed");
        }
    }

    json::Value doc;
    doc["ok"] = failures == 0;
    doc["results"] = json::Value(std::move(results));
    if (args.count("out")) {
        const Status saved = json::SaveFileOr(args["out"], doc);
        if (!saved.ok()) {
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
            return 1;
        }
    }
    if (args.count("telemetry-out")) {
        const Status saved = json::SaveFileOr(
            args["telemetry-out"], coordinator.telemetry().ToJson());
        if (!saved.ok()) {
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
            return 1;
        }
    }
    if (args.count("metrics-out")) {
        const std::string text = obs::Registry::Default().ToPrometheus();
        std::FILE* f = std::fopen(args["metrics-out"].c_str(), "w");
        if (f == nullptr ||
            std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
            std::fprintf(stderr, "cannot write metrics exposition '%s'\n",
                         args["metrics-out"].c_str());
            if (f != nullptr)
                std::fclose(f);
            return 1;
        }
        std::fclose(f);
    }
    if (!spa::detail::IsQuiet() && !serial) {
        const dist::DistTelemetry& t = coordinator.telemetry();
        std::printf("TELEMETRY leases=%lld expired=%lld redispatch=%lld "
                    "steals=%lld merge_rejects=%lld local=%lld\n",
                    static_cast<long long>(t.leases_issued),
                    static_cast<long long>(t.leases_expired),
                    static_cast<long long>(t.redispatches),
                    static_cast<long long>(t.steals),
                    static_cast<long long>(t.merge_rejections),
                    static_cast<long long>(t.local_runs));
    }
    return failures == 0 ? 0 : 1;
}
