/**
 * @file
 * CI zoo smoke: loads every zoo model (CNN and transformer), round-trips
 * it through the JSON frontend, and runs one small (S, N) co-design
 * evaluation per model on one ASIC and one FPGA budget. Exits non-zero
 * on any Status error, failed design, or round-trip mismatch — the
 * `tools/ci.sh zoo` stage runs this under ASan to catch op-descriptor
 * regressions across the whole operator set.
 */

#include <cstdio>
#include <string>

#include "autoseg/session.h"
#include "cost/cost.h"
#include "hw/platform.h"
#include "nn/loader.h"
#include "nn/models.h"
#include "nn/workload.h"

namespace {

using namespace spa;

bool
CheckModel(const std::string& name, const autoseg::Session& session,
           const autoseg::CoDesignOptions& search)
{
    nn::Graph graph = nn::BuildModel(name);

    // JSON round trip must preserve the workload-relevant structure.
    StatusOr<nn::Graph> reloaded = nn::GraphFromJsonOr(nn::GraphToJson(graph));
    if (!reloaded.ok()) {
        std::fprintf(stderr, "FAIL %s: round trip: %s\n", name.c_str(),
                     reloaded.status().ToString().c_str());
        return false;
    }
    const nn::Workload w = nn::ExtractWorkload(graph);
    const nn::Workload w2 = nn::ExtractWorkload(*reloaded);
    if (autoseg::Session::WorkloadFingerprint(w) !=
        autoseg::Session::WorkloadFingerprint(w2)) {
        std::fprintf(stderr, "FAIL %s: fingerprint changed across round trip\n",
                     name.c_str());
        return false;
    }

    const hw::Platform budgets[] = {hw::NvdlaSmallBudget(), hw::Zu3egBudget()};
    for (const hw::Platform& budget : budgets) {
        const autoseg::CoDesignResult result = session.Run(
            w, budget, alloc::DesignGoal::kLatency, search);
        if (!result.status.ok()) {
            std::fprintf(stderr, "FAIL %s on %s: %s\n", name.c_str(),
                         budget.name.c_str(), result.status.ToString().c_str());
            return false;
        }
        if (!result.ok) {
            std::fprintf(stderr, "FAIL %s on %s: no feasible design\n",
                         name.c_str(), budget.name.c_str());
            return false;
        }
        std::printf("ok   %-16s %-12s S=%d N=%d latency=%.6f ms\n",
                    name.c_str(), budget.name.c_str(),
                    result.assignment.num_segments, result.assignment.num_pus,
                    result.alloc.latency_seconds * 1e3);
    }
    return true;
}

}  // namespace

int
main()
{
    cost::CostModel cost_model;
    cost_model.EnableMemo();
    autoseg::Session session(cost_model, autoseg::SessionOptions{1, true});

    // One small evaluation per model: two PU candidates, few segments.
    autoseg::CoDesignOptions search;
    search.pu_candidates = {2};
    search.max_segments = 2;
    search.jobs = 1;

    int failures = 0;
    for (const std::string& name : nn::AllZooModelNames())
        if (!CheckModel(name, session, search))
            ++failures;
    if (failures > 0) {
        std::fprintf(stderr, "zoo smoke: %d model(s) failed\n", failures);
        return 1;
    }
    std::printf("zoo smoke: all models passed\n");
    return 0;
}
