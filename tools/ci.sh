#!/usr/bin/env bash
# Local CI: tier-1 build + tests, then the sanitizer presets over the
# robustness- and concurrency-sensitive suites (which include the
# fault-injection sweep and checkpoint/resume tests).
#
# Usage: tools/ci.sh [tier1|asan|tsan|serve|zoo|obs|dist|all]   (default: all)
#   JOBS=<n> overrides the parallel width.
#   CHAOS_SEED=<n> reseeds the dist stage's kill schedule.
#
# The serve stage builds both sanitizer presets and runs only the
# serving-layer suites: protocol fuzzing, warm-cache persistence and the
# fault sweep under ASan+UBSan; the concurrent-clients / shared-session
# suites under TSan.
#
# The zoo stage builds tools/zoo_smoke under ASan+UBSan and runs it:
# every zoo model (CNN and transformer) is loaded, round-tripped through
# the JSON frontend, and given one small (S, N) co-design evaluation on
# an ASIC and an FPGA budget. Any Status error fails the stage.
#
# The dist stage proves the fault-tolerant distributed sweep: the dist
# suites (shard merge edge cases, worker service, coordinator
# lease/steal/degrade, in-test chaos) run under ASan+UBSan, then a
# scripted chaos run starts 4 real autoseg_worker daemons, SIGKILLs
# every one of them mid-sweep on a seeded schedule (reviving two), and
# byte-compares the merged results against a serial single-process
# reference. Any diff fails the stage.
#
# The obs stage drives a live daemon end to end: a mixed warm/cold/
# deadline-expired workload with caller-supplied trace ids, a metrics
# scrape, a provoked fault-injection trip whose flight-recorder dump
# must name the dying request, and a SIGTERM post-mortem — then
# obs_check schema-validates the request log, the Prometheus exposition
# and the flight dumps, and cross-checks trace ids between all three.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_preset() {
    local preset="$1"
    echo "==== [$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==== [$preset] ctest"
    ctest --preset "$preset" -j "$JOBS"
}

run_serve() {
    local preset="$1" suites="$2"
    echo "==== [serve/$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS" \
        --target serve_test serve_concurrency_test
    echo "==== [serve/$preset] ctest ($suites)"
    ctest --test-dir "build-$preset" -j "$JOBS" --output-on-failure \
        -R "$suites"
}

run_zoo() {
    local preset="$1"
    echo "==== [zoo/$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS" --target zoo_smoke
    echo "==== [zoo/$preset] zoo_smoke"
    "build-$preset/tools/zoo_smoke"
}

# Starts a daemon ($1 = extra flags as one array name), waits for its
# PORT line, and exports OBS_PID/OBS_PORT.
obs_start_daemon() {
    local out="$1"; shift
    build/tools/autoseg_served --workers 1 --pending 8 --quiet "$@" \
        > "$out" &
    OBS_PID=$!
    OBS_PORT=""
    for _ in $(seq 1 100); do
        OBS_PORT="$(sed -n 's/^PORT //p' "$out" 2>/dev/null | head -1)"
        [ -n "$OBS_PORT" ] && return 0
        kill -0 "$OBS_PID" 2>/dev/null || break
        sleep 0.1
    done
    echo "obs: daemon failed to report a port" >&2
    return 1
}

# Starts an autoseg_worker ($1 = stdout file, rest = extra flags),
# waits for its PORT line, and exports DIST_PID/DIST_PORT.
dist_start_worker() {
    local out="$1"; shift
    build/tools/autoseg_worker --shard-dir "$DIST_SHARDS" \
        --jobs 2 --checkpoint-every 1 --quiet "$@" > "$out" &
    DIST_PID=$!
    DIST_PORT=""
    for _ in $(seq 1 100); do
        DIST_PORT="$(sed -n 's/^PORT //p' "$out" 2>/dev/null | head -1)"
        [ -n "$DIST_PORT" ] && return 0
        kill -0 "$DIST_PID" 2>/dev/null || break
        sleep 0.1
    done
    echo "dist: worker failed to report a port" >&2
    return 1
}

run_dist() {
    echo "==== [dist/asan] configure + build"
    cmake --preset asan
    cmake --build --preset asan -j "$JOBS" --target dist_test autoseg_worker
    echo "==== [dist/asan] ctest (merge edge cases, worker, coordinator, chaos)"
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure \
        -R "BackoffTest|ShardPlanTest|MergeTest|SessionShardTest|WorkerServerTest|CoordinatorTest|ChaosTest"

    echo "==== [dist] configure + build"
    cmake --preset default
    cmake --build --preset default -j "$JOBS" \
        --target autoseg_worker autoseg_coordinator autoseg_client obs_check
    local dir
    dir="$(mktemp -d)"
    DIST_SHARDS="$dir/shards"
    mkdir -p "$DIST_SHARDS"
    local pids=()
    # shellcheck disable=SC2154  # pids expands inside the trap, not here
    trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$dir"' RETURN

    # The sweep: 2 (model, platform) units, 10 (S, N) pairs each. Small
    # enough to finish in tens of seconds, long enough that every kill
    # below lands mid-sweep.
    local sweep=(--models alexnet_conv_tower --platforms eyeriss,zu3eg
                 --pus 2,4 --max-segments 6 --mip-node-budget 256
                 --jobs 2 --quiet)

    echo "==== [dist] serial reference run"
    build/tools/autoseg_coordinator --serial "${sweep[@]}" \
        --out "$dir/serial.json"

    echo "==== [dist] chaos run: 4 workers, every one SIGKILLed mid-sweep"
    local ports=() wpids=() i
    for i in 0 1 2 3; do
        dist_start_worker "$dir/worker$i.out"
        ports+=("$DIST_PORT"); wpids+=("$DIST_PID"); pids+=("$DIST_PID")
    done
    build/tools/autoseg_coordinator --shard-dir "$DIST_SHARDS" \
        --workers "$(IFS=,; echo "${ports[*]}")" "${sweep[@]}" \
        --shard-pairs 2 --heartbeat-ms 20 --lease-ms 60000 \
        --max-attempts 8 --seed "${CHAOS_SEED:-1}" --checkpoint-every 1 \
        --out "$dir/dist.json" --telemetry-out "$dir/telemetry.json" \
        --metrics-out "$dir/metrics.prom" > "$dir/coordinator.out" &
    local coord_pid=$!
    pids+=("$coord_pid")

    # Seeded kill schedule: SIGKILL each worker in turn at a 0.3-0.9 s
    # stagger, reviving the first two on their old ports so the fleet
    # never collapses entirely. CHAOS_SEED varies the offsets.
    local seed="${CHAOS_SEED:-1}" off
    for i in 0 1 2 3; do
        seed=$(( (seed * 1103515245 + 12345) % 2147483648 ))
        off=$(( 300 + seed % 600 ))
        sleep "0.$off"
        kill -9 "${wpids[$i]}" 2>/dev/null || true
        wait "${wpids[$i]}" 2>/dev/null || true
        if [ "$i" -lt 2 ]; then
            dist_start_worker "$dir/worker${i}_revived.out" \
                --port "${ports[$i]}"
            wpids[$i]=$DIST_PID; pids+=("$DIST_PID")
        fi
    done

    if ! wait "$coord_pid"; then
        echo "dist: chaos coordinator run failed" >&2
        sed -n '1,40p' "$dir/coordinator.out" >&2
        return 1
    fi

    echo "==== [dist] merged result must be byte-identical to serial"
    cmp "$dir/serial.json" "$dir/dist.json"

    local lost
    lost="$(sed -n 's/.*"workers_lost": \([0-9]*\).*/\1/p' \
        "$dir/telemetry.json" | head -1)"
    if [ "${lost:-0}" -lt 1 ]; then
        echo "dist: no worker deaths recorded — kills missed the sweep" >&2
        return 1
    fi

    echo "==== [dist] coordinator metrics carry the dist families"
    build/tools/obs_check --metrics "$dir/metrics.prom" \
        --require-family spa_dist_leases_issued \
        --require-family spa_dist_shards_completed \
        --require-family spa_dist_workers_live

    echo "==== [dist] revived worker exposes its shard counters"
    echo '{"id": "m", "method": "metrics"}' > "$dir/req_metrics.json"
    build/tools/autoseg_client --port "${ports[0]}" \
        --request-json "$dir/req_metrics.json" \
        --out "$dir/worker_metrics.json" >/dev/null
    grep -q "spa_dist_worker_shards_accepted" "$dir/worker_metrics.json"
    echo "==== [dist] ok"
}

run_obs() {
    echo "==== [obs] configure + build"
    cmake --preset default
    cmake --build --preset default -j "$JOBS" \
        --target autoseg_served autoseg_client spa_metrics obs_check
    local dir
    dir="$(mktemp -d)"
    trap 'kill $OBS_PID 2>/dev/null || true; rm -rf "$dir"' RETURN

    # Request set: cold codesign, warm repeat (cache hits), a
    # deadline-expired run, and a ping — each with a known trace id.
    cat > "$dir/model.json" <<'EOF'
{
  "name": "cinet",
  "input": {"c": 3, "h": 16, "w": 16},
  "layers": [
    {"name": "c1", "type": "conv", "out": 8, "k": 3, "stride": 1, "pad": 1},
    {"name": "c2", "type": "conv", "out": 16, "k": 3, "stride": 2, "pad": 1},
    {"name": "fc", "type": "fc", "out": 10}
  ]
}
EOF
    local model search
    model="$(cat "$dir/model.json")"
    search='"search": {"pus": [2], "max_segments": 4}'
    cat > "$dir/req_cold.json" <<EOF
{"id": "cold", "trace_id": "aaaaaaaaaaaaaa01", "method": "codesign",
 "model_json": $model, "platform": "eyeriss", $search}
EOF
    sed 's/"cold"/"warm"/; s/aaaaaaaaaaaaaa01/aaaaaaaaaaaaaa02/' \
        "$dir/req_cold.json" > "$dir/req_warm.json"
    cat > "$dir/req_deadline.json" <<EOF
{"id": "deadline", "trace_id": "aaaaaaaaaaaaaa03", "method": "codesign",
 "model_json": $model, "platform": "eyeriss", $search,
 "budget": {"deadline_ticks": 1}}
EOF
    echo '{"id": "ping", "trace_id": "aaaaaaaaaaaaaa04", "method": "ping"}' \
        > "$dir/req_ping.json"

    echo "==== [obs] mixed workload against a live daemon"
    obs_start_daemon "$dir/daemon.out" \
        --request-log "$dir/requests.ndjson" \
        --flight-recorder "$dir/flight.json"
    local req
    for req in cold warm deadline ping; do
        build/tools/autoseg_client --port "$OBS_PORT" \
            --request-json "$dir/req_$req.json" \
            --out "$dir/resp_$req.json" >/dev/null
        grep -q "\"trace_id\": \"$(sed -n 's/.*"trace_id": "\([0-9a-f]*\)".*/\1/p' \
            "$dir/req_$req.json" | head -1)\"" "$dir/resp_$req.json" || {
            echo "obs: response for '$req' does not echo its trace id" >&2
            return 1
        }
    done
    echo "==== [obs] metrics scrape"
    build/tools/spa_metrics --port "$OBS_PORT" --out "$dir/metrics.prom"
    grep -q "spa_serve_requests_ok" "$dir/metrics.prom"
    echo "==== [obs] SIGTERM post-mortem"
    kill -TERM "$OBS_PID"
    wait "$OBS_PID"
    build/tools/obs_check \
        --request-log "$dir/requests.ndjson" \
        --metrics "$dir/metrics.prom" \
        --flight "$dir/flight.json" \
        --min-events 4 \
        --expect-trace aaaaaaaaaaaaaa01 --expect-trace aaaaaaaaaaaaaa02 \
        --expect-trace aaaaaaaaaaaaaa03 --expect-trace aaaaaaaaaaaaaa04

    # A provoked in-flight failure: every request trips the armed parse
    # site, and the flight dump written at trip time must reconstruct
    # the dying request's timeline by its trace id.
    echo "==== [obs] provoked fault trip"
    obs_start_daemon "$dir/daemon_fault.out" \
        --request-log "$dir/requests_fault.ndjson" \
        --flight-recorder "$dir/flight_fault.json" \
        --arm-fault serve.request.parse,7,1
    echo '{"id": "doomed", "trace_id": "aaaaaaaaaaaaaaff", "method": "ping"}' \
        > "$dir/req_doomed.json"
    if build/tools/autoseg_client --port "$OBS_PORT" \
        --request-json "$dir/req_doomed.json" \
        --out "$dir/resp_doomed.json" >/dev/null; then
        echo "obs: armed request unexpectedly succeeded" >&2
        return 1
    fi
    grep -q '"code": "FAULT_INJECTED"' "$dir/resp_doomed.json"
    # Save the trip-time dump before the shutdown dump replaces it.
    cp "$dir/flight_fault.json" "$dir/flight_trip.json"
    kill -TERM "$OBS_PID"
    wait "$OBS_PID"
    build/tools/obs_check \
        --request-log "$dir/requests_fault.ndjson" \
        --flight "$dir/flight_trip.json" \
        --min-events 1 \
        --expect-trace aaaaaaaaaaaaaaff
    grep -q '"reason": "fault:' "$dir/flight_trip.json"
    echo "==== [obs] ok"
}

case "$STAGE" in
  tier1) run_preset default ;;
  asan)  run_preset asan ;;
  tsan)  run_preset tsan ;;
  serve)
    run_serve asan "ServeProtocolTest|ServeRobustnessTest|ServeFaultSweepTest|WarmCachePersistenceTest|ServeTransformerTest"
    run_serve tsan "ServeConcurrencyTest|ServeServerTest|ServeSessionTest|ServeTransformerTest"
    ;;
  zoo)
    run_zoo asan
    ;;
  obs)
    run_obs
    ;;
  dist)
    run_dist
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan
    run_zoo asan
    run_obs
    run_dist
    ;;
  *)
    echo "unknown stage '$STAGE' (want tier1|asan|tsan|serve|zoo|obs|dist|all)" >&2
    exit 2
    ;;
esac

echo "==== ci.sh: all requested stages passed"
