#!/usr/bin/env bash
# Local CI: tier-1 build + tests, then the sanitizer presets over the
# robustness- and concurrency-sensitive suites (which include the
# fault-injection sweep and checkpoint/resume tests).
#
# Usage: tools/ci.sh [tier1|asan|tsan|all]   (default: all)
#   JOBS=<n> overrides the parallel width.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_preset() {
    local preset="$1"
    echo "==== [$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==== [$preset] ctest"
    ctest --preset "$preset" -j "$JOBS"
}

case "$STAGE" in
  tier1) run_preset default ;;
  asan)  run_preset asan ;;
  tsan)  run_preset tsan ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan
    ;;
  *)
    echo "unknown stage '$STAGE' (want tier1|asan|tsan|all)" >&2
    exit 2
    ;;
esac

echo "==== ci.sh: all requested stages passed"
