#!/usr/bin/env bash
# Local CI: tier-1 build + tests, then the sanitizer presets over the
# robustness- and concurrency-sensitive suites (which include the
# fault-injection sweep and checkpoint/resume tests).
#
# Usage: tools/ci.sh [tier1|asan|tsan|serve|zoo|all]   (default: all)
#   JOBS=<n> overrides the parallel width.
#
# The serve stage builds both sanitizer presets and runs only the
# serving-layer suites: protocol fuzzing, warm-cache persistence and the
# fault sweep under ASan+UBSan; the concurrent-clients / shared-session
# suites under TSan.
#
# The zoo stage builds tools/zoo_smoke under ASan+UBSan and runs it:
# every zoo model (CNN and transformer) is loaded, round-tripped through
# the JSON frontend, and given one small (S, N) co-design evaluation on
# an ASIC and an FPGA budget. Any Status error fails the stage.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_preset() {
    local preset="$1"
    echo "==== [$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==== [$preset] ctest"
    ctest --preset "$preset" -j "$JOBS"
}

run_serve() {
    local preset="$1" suites="$2"
    echo "==== [serve/$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS" \
        --target serve_test serve_concurrency_test
    echo "==== [serve/$preset] ctest ($suites)"
    ctest --test-dir "build-$preset" -j "$JOBS" --output-on-failure \
        -R "$suites"
}

run_zoo() {
    local preset="$1"
    echo "==== [zoo/$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS" --target zoo_smoke
    echo "==== [zoo/$preset] zoo_smoke"
    "build-$preset/tools/zoo_smoke"
}

case "$STAGE" in
  tier1) run_preset default ;;
  asan)  run_preset asan ;;
  tsan)  run_preset tsan ;;
  serve)
    run_serve asan "ServeProtocolTest|ServeRobustnessTest|ServeFaultSweepTest|WarmCachePersistenceTest|ServeTransformerTest"
    run_serve tsan "ServeConcurrencyTest|ServeServerTest|ServeSessionTest|ServeTransformerTest"
    ;;
  zoo)
    run_zoo asan
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan
    run_zoo asan
    ;;
  *)
    echo "unknown stage '$STAGE' (want tier1|asan|tsan|serve|zoo|all)" >&2
    exit 2
    ;;
esac

echo "==== ci.sh: all requested stages passed"
