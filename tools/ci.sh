#!/usr/bin/env bash
# Local CI: tier-1 build + tests, then the sanitizer presets over the
# robustness- and concurrency-sensitive suites (which include the
# fault-injection sweep and checkpoint/resume tests).
#
# Usage: tools/ci.sh [tier1|asan|tsan|serve|all]   (default: all)
#   JOBS=<n> overrides the parallel width.
#
# The serve stage builds both sanitizer presets and runs only the
# serving-layer suites: protocol fuzzing, warm-cache persistence and the
# fault sweep under ASan+UBSan; the concurrent-clients / shared-session
# suites under TSan.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_preset() {
    local preset="$1"
    echo "==== [$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==== [$preset] ctest"
    ctest --preset "$preset" -j "$JOBS"
}

run_serve() {
    local preset="$1" suites="$2"
    echo "==== [serve/$preset] configure + build"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS" \
        --target serve_test serve_concurrency_test
    echo "==== [serve/$preset] ctest ($suites)"
    ctest --test-dir "build-$preset" -j "$JOBS" --output-on-failure \
        -R "$suites"
}

case "$STAGE" in
  tier1) run_preset default ;;
  asan)  run_preset asan ;;
  tsan)  run_preset tsan ;;
  serve)
    run_serve asan "ServeProtocolTest|ServeRobustnessTest|ServeFaultSweepTest|WarmCachePersistenceTest"
    run_serve tsan "ServeConcurrencyTest|ServeServerTest|ServeSessionTest"
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan
    ;;
  *)
    echo "unknown stage '$STAGE' (want tier1|asan|tsan|serve|all)" >&2
    exit 2
    ;;
esac

echo "==== ci.sh: all requested stages passed"
