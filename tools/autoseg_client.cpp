// autoseg_client: command-line client for the autoseg_served daemon.
//
//   autoseg_client --port 7410 --model alexnet --platform eyeriss
//   autoseg_client --port 7410 --model squeezenet \
//                  --platforms eyeriss,ku115 --goal throughput
//   autoseg_client --port 7410 --ping
//   autoseg_client --port 7410 --stats
//   autoseg_client --port 7410 --save-cache
//   autoseg_client --port 7410 --shutdown
//   autoseg_client --port 7410 --request-json req.json --out resp.json
//
// Builds the JSON request (or reads one from a file), sends it over the
// newline-delimited loopback protocol and pretty-prints the response.
//
// With --max-retries N a refused connection, a broken transport or an
// UNAVAILABLE answer (saturated admission queue, busy worker slot) is
// retried up to N more times under deterministic exponential backoff
// with jitter (dist/backoff.h). Exhaustion produces a structured
// failure document on stdout — scripts never have to scrape stderr to
// tell "the daemon was busy" from "the request was malformed".

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "dist/backoff.h"
#include "json/json.h"
#include "serve/client.h"

using namespace spa;

namespace {

void
PrintUsage()
{
    std::printf(
        "usage: autoseg_client --port N [--ping | --stats | --save-cache |\n"
        "                                --shutdown | --request-json F |\n"
        "                                --model M --platform P]\n"
        "                      [--platforms P1,P2,...]\n"
        "                      [--goal latency|throughput]\n"
        "                      [--deadline-ticks N] [--deadline-s SEC]\n"
        "                      [--max-pairs N] [--id STR] [--out F]\n"
        "                      [--max-retries N]  retry refused/UNAVAILABLE\n"
        "                                         with backoff + jitter\n"
        "                      [--retry-base-ms N] [--retry-seed N]\n");
}

json::Value
SplitList(const std::string& list)
{
    json::Array out;
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        out.push_back(json::Value(list.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return json::Value(std::move(out));
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    bool ping = false, stats = false, save_cache = false, shutdown = false;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--ping") {
            ping = true;
        } else if (key == "--stats") {
            stats = true;
        } else if (key == "--save-cache") {
            save_cache = true;
        } else if (key == "--shutdown") {
            shutdown = true;
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!args.count("port")) {
        PrintUsage();
        return 1;
    }

    json::Value request;
    if (args.count("request-json")) {
        StatusOr<json::Value> loaded = json::LoadFileOr(args["request-json"]);
        if (!loaded.ok()) {
            std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
            return 1;
        }
        request = std::move(*loaded);
    } else if (ping) {
        request["method"] = "ping";
    } else if (stats) {
        request["method"] = "stats";
    } else if (save_cache) {
        request["method"] = "save_cache";
    } else if (shutdown) {
        request["method"] = "shutdown";
    } else if (args.count("model")) {
        request["method"] = "codesign";
        request["model"] = args["model"];
        if (args.count("platforms"))
            request["platforms"] = SplitList(args["platforms"]);
        else
            request["platform"] =
                args.count("platform") ? args["platform"] : "eyeriss";
        if (args.count("goal"))
            request["goal"] = args["goal"];
        json::Value budget;
        if (args.count("deadline-ticks"))
            budget["deadline_ticks"] =
                static_cast<int64_t>(std::stoll(args["deadline-ticks"]));
        if (args.count("deadline-s"))
            budget["deadline_s"] = std::stod(args["deadline-s"]);
        if (args.count("max-pairs"))
            budget["max_pairs"] =
                static_cast<int64_t>(std::stoll(args["max-pairs"]));
        if (budget.IsObject())
            request["budget"] = std::move(budget);
    } else {
        PrintUsage();
        return 1;
    }
    if (args.count("id"))
        request["id"] = args["id"];

    const int port = std::stoi(args["port"]);
    const int max_retries =
        args.count("max-retries") ? std::stoi(args["max-retries"]) : 0;
    dist::BackoffPolicy backoff;
    if (args.count("retry-base-ms"))
        backoff.base_ms = std::stoll(args["retry-base-ms"]);
    const uint64_t retry_seed = args.count("retry-seed")
                                    ? std::stoull(args["retry-seed"])
                                    : static_cast<uint64_t>(port);

    // One fresh connection per attempt: a refused dial, a torn
    // transport and an UNAVAILABLE answer are all retryable; anything
    // else (a malformed request, a real result) is final immediately.
    json::Value response_doc;
    Status failure;
    int attempts = 0;
    for (int attempt = 0;; ++attempt) {
        ++attempts;
        serve::Client client;
        failure = client.Connect(port);
        bool retryable = !failure.ok();
        if (failure.ok()) {
            StatusOr<json::Value> response = client.Call(request);
            if (!response.ok()) {
                failure = response.status();
                retryable = true;
            } else if (!response->GetBool("ok", true) &&
                       response->GetString("code", "") == "UNAVAILABLE") {
                failure = Unavailable(
                    response->GetString("error", "daemon unavailable"));
                retryable = true;
            } else {
                response_doc = std::move(*response);
                failure = Status();
            }
        }
        if (failure.ok() || !retryable || attempt >= max_retries)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            dist::BackoffDelayMs(backoff, attempt, retry_seed)));
    }
    if (!failure.ok()) {
        // The structured exhaustion report (stdout, like any response).
        response_doc = json::Value();
        response_doc["ok"] = false;
        response_doc["code"] = StatusCodeName(failure.code());
        response_doc["error"] = failure.message();
        response_doc["attempts"] = static_cast<int64_t>(attempts);
        response_doc["retries_exhausted"] = max_retries > 0;
    }
    if (args.count("out")) {
        const Status saved = json::SaveFileOr(args["out"], response_doc);
        if (!saved.ok()) {
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
            return 1;
        }
    }
    std::printf("%s\n", response_doc.Pretty().c_str());
    return response_doc.GetBool("ok", false) ? 0 : 2;
}
