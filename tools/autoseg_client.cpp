// autoseg_client: command-line client for the autoseg_served daemon.
//
//   autoseg_client --port 7410 --model alexnet --platform eyeriss
//   autoseg_client --port 7410 --model squeezenet \
//                  --platforms eyeriss,ku115 --goal throughput
//   autoseg_client --port 7410 --ping
//   autoseg_client --port 7410 --stats
//   autoseg_client --port 7410 --save-cache
//   autoseg_client --port 7410 --shutdown
//   autoseg_client --port 7410 --request-json req.json --out resp.json
//
// Builds the JSON request (or reads one from a file), sends it over the
// newline-delimited loopback protocol and pretty-prints the response.

#include <cstdio>
#include <map>
#include <string>

#include "json/json.h"
#include "serve/client.h"

using namespace spa;

namespace {

void
PrintUsage()
{
    std::printf(
        "usage: autoseg_client --port N [--ping | --stats | --save-cache |\n"
        "                                --shutdown | --request-json F |\n"
        "                                --model M --platform P]\n"
        "                      [--platforms P1,P2,...]\n"
        "                      [--goal latency|throughput]\n"
        "                      [--deadline-ticks N] [--deadline-s SEC]\n"
        "                      [--max-pairs N] [--id STR] [--out F]\n");
}

json::Value
SplitList(const std::string& list)
{
    json::Array out;
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        out.push_back(json::Value(list.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return json::Value(std::move(out));
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    bool ping = false, stats = false, save_cache = false, shutdown = false;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--ping") {
            ping = true;
        } else if (key == "--stats") {
            stats = true;
        } else if (key == "--save-cache") {
            save_cache = true;
        } else if (key == "--shutdown") {
            shutdown = true;
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!args.count("port")) {
        PrintUsage();
        return 1;
    }

    json::Value request;
    if (args.count("request-json")) {
        StatusOr<json::Value> loaded = json::LoadFileOr(args["request-json"]);
        if (!loaded.ok()) {
            std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
            return 1;
        }
        request = std::move(*loaded);
    } else if (ping) {
        request["method"] = "ping";
    } else if (stats) {
        request["method"] = "stats";
    } else if (save_cache) {
        request["method"] = "save_cache";
    } else if (shutdown) {
        request["method"] = "shutdown";
    } else if (args.count("model")) {
        request["method"] = "codesign";
        request["model"] = args["model"];
        if (args.count("platforms"))
            request["platforms"] = SplitList(args["platforms"]);
        else
            request["platform"] =
                args.count("platform") ? args["platform"] : "eyeriss";
        if (args.count("goal"))
            request["goal"] = args["goal"];
        json::Value budget;
        if (args.count("deadline-ticks"))
            budget["deadline_ticks"] =
                static_cast<int64_t>(std::stoll(args["deadline-ticks"]));
        if (args.count("deadline-s"))
            budget["deadline_s"] = std::stod(args["deadline-s"]);
        if (args.count("max-pairs"))
            budget["max_pairs"] =
                static_cast<int64_t>(std::stoll(args["max-pairs"]));
        if (budget.IsObject())
            request["budget"] = std::move(budget);
    } else {
        PrintUsage();
        return 1;
    }
    if (args.count("id"))
        request["id"] = args["id"];

    serve::Client client;
    Status connected = client.Connect(std::stoi(args["port"]));
    if (!connected.ok()) {
        std::fprintf(stderr, "%s\n", connected.ToString().c_str());
        return 1;
    }
    StatusOr<json::Value> response = client.Call(request);
    if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
    }
    if (args.count("out")) {
        const Status saved = json::SaveFileOr(args["out"], *response);
        if (!saved.ok()) {
            std::fprintf(stderr, "%s\n", saved.ToString().c_str());
            return 1;
        }
    }
    std::printf("%s\n", response->Pretty().c_str());
    return response->GetBool("ok", false) ? 0 : 2;
}
