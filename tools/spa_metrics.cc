// spa_metrics: scrape a running autoseg_served's metrics.
//
//   spa_metrics --port 7410 [--out metrics.prom] [--json]
//
// Calls the daemon's "metrics" method and prints (or atomically writes)
// the Prometheus text exposition, slow-request exemplars included. With
// --json the raw response document is emitted instead, which carries
// the exemplars as structured records ({trace_id, method, ns}) for
// tooling that wants to join them against the request log.

#include <cstdio>
#include <map>
#include <string>

#include "common/util.h"
#include "json/json.h"
#include "serve/client.h"

using namespace spa;

namespace {

void
PrintUsage()
{
    std::printf(
        "usage: spa_metrics --port N   daemon port (required)\n"
        "                   [--out F]  write instead of printing (atomic)\n"
        "                   [--json]   emit the raw response document\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    bool as_json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        if (key == "--json") {
            as_json = true;
        } else if (key == "--help" || key == "-h") {
            PrintUsage();
            return 0;
        } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
            args[key.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            PrintUsage();
            return 1;
        }
    }
    if (!args.count("port")) {
        PrintUsage();
        return 1;
    }

    serve::Client client;
    const Status connected = client.Connect(std::stoi(args["port"]));
    if (!connected.ok()) {
        std::fprintf(stderr, "%s\n", connected.ToString().c_str());
        return 1;
    }
    json::Value request;
    request["method"] = std::string("metrics");
    request["id"] = std::string("spa_metrics");
    StatusOr<json::Value> response = client.Call(request);
    if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
    }
    if (!response->GetBool("ok", false)) {
        std::fprintf(stderr, "daemon refused: %s\n", response->Dump().c_str());
        return 2;
    }

    const std::string text =
        as_json ? response->Dump() + "\n" : response->GetString("exposition", "");
    if (args.count("out")) {
        const Status written = WriteFileAtomicOr(args["out"], text);
        if (!written.ok()) {
            std::fprintf(stderr, "%s\n", written.ToString().c_str());
            return 1;
        }
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}
